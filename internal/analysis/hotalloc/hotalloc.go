// Package hotalloc protects the allocation-free fast paths built in the
// performance PRs — the event/ready heaps, the TaskSpec freelist, the dense
// residency tables, the FP16 quantizer — from silent regression. A function
// opts in by carrying //geompc:hot in its doc comment; inside it the
// analyzer flags the expressions that heap-allocate (or may, once escape
// analysis gives up):
//
//   - slice and map composite literals, and &T{} pointer literals
//   - make and new
//   - function literals and method values (both capture and escape)
//   - append whose destination is not the slice being appended to — the
//     self-append `s = append(s, x)` is the amortized-reuse idiom and is
//     allowed, anything else copies or grows a fresh backing array
//
// Allocation-freedom is transitive: a //geompc:hot function calling a
// helper that allocates is as slow as allocating itself, so the analyzer
// also computes a whole-program "may allocate" summary (bottom-up over
// call-graph SCCs, interface calls resolved to every matching method) and
// flags hot call sites whose callee can allocate — with the call chain
// down to the offending make/append in the message. Calls to other
// //geompc:hot functions are exempt: the callee's own hotness polices it.
// Body-less standard-library callees use a curated intrinsic table (all of
// fmt, the string builders, sort.Slice, ...); unlisted std functions are
// assumed allocation-free, which DESIGN.md §6j records as the model's
// honesty boundary. Allocation sites under a reasoned //geompc:nolint
// hotalloc are audited (freelist warm-ups, grow-once pools) and do not
// taint callers.
//
// The benchmarks in BENCH_kernels.json catch allocation regressions after
// the fact; hotalloc catches them in review, and keeps working when a
// benchmark's allocs/op happens to round to zero.
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"geompc/internal/analysis"
)

// Name is the analyzer name, usable in //geompc:nolint directives.
const Name = "hotalloc"

// Analyzer is the hotalloc instance registered with the driver.
var Analyzer = &analysis.Analyzer{
	Name:    Name,
	Doc:     "flags allocating expressions and transitively-allocating calls inside functions marked //geompc:hot",
	Prepare: prepare,
	Run:     run,
}

// externAllocPkgs are standard-library packages whose every function is
// modeled as allocating.
var externAllocPkgs = map[string]bool{"fmt": true}

// externAllocFuncs are individual standard-library functions modeled as
// allocating.
var externAllocFuncs = map[string]bool{
	"errors.New":          true,
	"sort.Slice":          true,
	"sort.SliceStable":    true,
	"slices.Clone":        true,
	"maps.Clone":          true,
	"strconv.Itoa":        true,
	"strconv.Quote":       true,
	"strconv.FormatInt":   true,
	"strconv.FormatUint":  true,
	"strconv.FormatFloat": true,
	"strings.Join":        true,
	"strings.Split":       true,
	"strings.Fields":      true,
	"strings.Repeat":      true,
	"strings.Replace":     true,
	"strings.ReplaceAll":  true,
	"strings.ToUpper":     true,
	"strings.ToLower":     true,
	"strings.TrimFunc":    true,
	"strings.Map":         true,
}

// HotSetKey memoizes the set of //geompc:hot functions.
const hotSetKey = "hotset"

// hotSet returns every Func whose declaration carries //geompc:hot.
func hotSet(prog *analysis.Program) map[*analysis.Func]bool {
	return prog.Memo(hotSetKey, func() any {
		set := make(map[*analysis.Func]bool)
		decls := make(map[*ast.FuncDecl]bool)
		for _, pkg := range prog.All {
			for _, f := range pkg.Files {
				for _, fd := range analysis.HotFuncs(f) {
					decls[fd] = true
				}
			}
		}
		for _, fn := range prog.Funcs() {
			if fn.Decl != nil && decls[fn.Decl] {
				set[fn] = true
			}
		}
		return set
	}).(map[*analysis.Func]bool)
}

// Facts computes (or returns) the may-allocate summary.
func Facts(prog *analysis.Program) map[*analysis.Func]*analysis.Taint {
	hot := hotSet(prog)
	return prog.Flow(analysis.FlowSpec{
		Key:       "allocates",
		CallsOnly: true, // creating a closure is a *direct* site; only executing allocates transitively
		Direct: func(fn *analysis.Func) *analysis.Taint {
			return directAlloc(prog, fn)
		},
		Extern: func(fn *analysis.Func, e analysis.ExternEdge) *analysis.Taint {
			what, ok := externAlloc(e)
			if !ok || prog.SuppressedAt(fn.Pkg.Fset, e.Pos, Name) {
				return nil
			}
			return &analysis.Taint{What: what, Pos: e.Pos, CallPos: e.Pos}
		},
		Block: func(fn *analysis.Func, e analysis.Edge) bool {
			// A hot callee polices its own body: its unsuppressed sites are
			// findings there, its suppressed ones are audited.
			return hot[e.Callee]
		},
	})
}

func prepare(prog *analysis.Program) { Facts(prog) }

// externAlloc consults the intrinsic table.
func externAlloc(e analysis.ExternEdge) (string, bool) {
	if externAllocPkgs[e.PkgPath] {
		return e.PkgPath + "." + e.Name, true
	}
	if e.Recv == "" && externAllocFuncs[e.PkgPath+"."+e.Name] {
		return e.PkgPath + "." + e.Name, true
	}
	return "", false
}

// allocSite is one allocating expression in a function's own body.
type allocSite struct {
	pos  token.Pos
	what string // short root description for summaries
	msg  string // full intraprocedural diagnostic (without function name)
}

// allocSites walks fn's own body (nested literals excluded — they are
// their own nodes) and reports each allocating expression in source order.
// The //geompc:nolint hotalloc check is left to the caller so that the
// intraprocedural reporter can flow every site through the driver's
// suppression machinery unconditionally.
func allocSites(fn *analysis.Func, visit func(allocSite) bool) {
	info := fn.Pkg.Info
	// First pass: vet self-appends, and note selectors in call position so
	// x.M() is not mistaken for the method value x.M (only the latter
	// allocates its bound closure).
	selfAppend := make(map[*ast.CallExpr]bool)
	calledSels := make(map[*ast.SelectorExpr]bool)
	analysis.InspectOwn(fn, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			markSelfAppends(info, n, selfAppend)
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				calledSels[sel] = true
			}
		}
		return true
	})

	stopped := false
	report := func(s allocSite) bool {
		if stopped {
			return false
		}
		if !visit(s) {
			stopped = true
		}
		return !stopped
	}
	analysis.InspectOwn(fn, func(n ast.Node) bool {
		if stopped {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := n.X.(*ast.CompositeLit); ok {
					report(allocSite{n.Pos(), "&" + litName(info, cl) + "{}",
						fmt.Sprintf("&%s{} allocates", litName(info, cl)) + " in //geompc:hot %s — reuse a freelist entry"})
					return false // don't double-report the inner literal
				}
			}
		case *ast.CompositeLit:
			tv, ok := info.Types[n]
			if !ok || tv.Type == nil {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice:
				report(allocSite{n.Pos(), "slice literal", "slice literal allocates in //geompc:hot %s"})
			case *types.Map:
				report(allocSite{n.Pos(), "map literal", "map literal allocates in //geompc:hot %s"})
			}
		case *ast.SelectorExpr:
			if calledSels[n] {
				return true
			}
			if s, ok := info.Selections[n]; ok && s.Kind() == types.MethodVal {
				report(allocSite{n.Pos(), "method value " + types.ExprString(n),
					fmt.Sprintf("method value %s allocates its bound closure", types.ExprString(n)) + " in //geompc:hot %s — bind it once in the cold setup path"})
			}
		case *ast.CallExpr:
			switch {
			case analysis.IsBuiltinCall(info, n, "make"):
				report(allocSite{n.Pos(), "make", "make allocates in //geompc:hot %s — preallocate in the cold setup path"})
			case analysis.IsBuiltinCall(info, n, "new"):
				report(allocSite{n.Pos(), "new", "new allocates in //geompc:hot %s — reuse a freelist entry"})
			case analysis.IsBuiltinCall(info, n, "append") && !selfAppend[n]:
				report(allocSite{n.Pos(), "growing append", "append to a different destination in //geompc:hot %s — only the amortized self-append s = append(s, x) is allocation-stable"})
			}
		}
		return true
	})
}

// directAlloc is the summary's Direct hook: the first unsuppressed
// allocation site, counting closure creation (the literal itself escapes).
func directAlloc(prog *analysis.Program, fn *analysis.Func) *analysis.Taint {
	var taint *analysis.Taint
	allocSites(fn, func(s allocSite) bool {
		if prog.SuppressedAt(fn.Pkg.Fset, s.pos, Name) {
			return true
		}
		taint = &analysis.Taint{What: s.what, Pos: s.pos, CallPos: s.pos}
		return false
	})
	if taint != nil {
		return taint
	}
	// A function literal value is an allocation at its creation site.
	body := fn.Body()
	if body == nil {
		return nil
	}
	for _, e := range fn.Edges {
		if e.Kind == analysis.EdgeRef && e.Callee.Lit != nil {
			if prog.SuppressedAt(fn.Pkg.Fset, e.Pos, Name) {
				continue
			}
			return &analysis.Taint{What: "func literal (closure)", Pos: e.Pos, CallPos: e.Pos}
		}
	}
	return nil
}

func run(pass *analysis.Pass) {
	hot := hotSet(pass.Prog)
	facts := Facts(pass.Prog)
	pkgPath := pass.Pkg.Path()
	for _, fn := range pass.Prog.Funcs() {
		if fn.Pkg.Path != pkgPath || !hot[fn] {
			continue
		}
		reportOwnSites(pass, fn)
		reportTransitive(pass, fn, hot, facts)
	}
}

// reportOwnSites is the PR 5 intraprocedural check: every allocating
// expression written directly inside the hot function.
func reportOwnSites(pass *analysis.Pass, fn *analysis.Func) {
	name := fn.Decl.Name.Name
	allocSites(fn, func(s allocSite) bool {
		pass.Reportf(s.pos, s.msg, name)
		return true
	})
	// Closure literals created in the hot body.
	for _, e := range fn.Edges {
		if e.Kind == analysis.EdgeRef && e.Callee.Lit != nil {
			pass.Reportf(e.Pos, "func literal in //geompc:hot %s — closures capture and escape", name)
		}
	}
}

// reportTransitive flags calls whose callee may allocate.
func reportTransitive(pass *analysis.Pass, fn *analysis.Func, hot map[*analysis.Func]bool, facts map[*analysis.Func]*analysis.Taint) {
	name := fn.Decl.Name.Name
	seen := make(map[token.Pos]bool)
	for _, e := range fn.Edges {
		if e.Kind != analysis.EdgeCall || hot[e.Callee] || seen[e.Pos] {
			continue
		}
		t := facts[e.Callee]
		if t == nil {
			continue
		}
		seen[e.Pos] = true
		pass.Reportf(e.Pos, "call to %s allocates (%s) in //geompc:hot %s — make the helper allocation-free, mark it //geompc:hot, or hoist the call",
			e.Callee.Name, pass.Prog.Chain(e.Callee, facts), name)
	}
	for _, e := range fn.Extern {
		if e.Kind != analysis.EdgeCall || seen[e.Pos] {
			continue
		}
		if what, ok := externAlloc(e); ok {
			seen[e.Pos] = true
			pass.Reportf(e.Pos, "call to %s allocates in //geompc:hot %s — format/allocate in the cold path", what, name)
		}
	}
}

// markSelfAppends records `x = append(x, ...)` and the compaction form
// `x = append(x[:k], ...)` (single assignment, plain =, destination
// textually identical to the appendee or to its sliced base) as the allowed
// amortized-reuse idioms: both write into x's existing backing array and
// grow it at most to steady state.
func markSelfAppends(info *types.Info, as *ast.AssignStmt, selfAppend map[*ast.CallExpr]bool) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 || as.Tok != token.ASSIGN {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || !analysis.IsBuiltinCall(info, call, "append") || len(call.Args) == 0 {
		return
	}
	lhs := types.ExprString(as.Lhs[0])
	appendee := call.Args[0]
	if sl, ok := appendee.(*ast.SliceExpr); ok && sl.Slice3 == false {
		appendee = sl.X
	}
	if lhs == types.ExprString(appendee) {
		selfAppend[call] = true
	}
}

func litName(info *types.Info, cl *ast.CompositeLit) string {
	if tv, ok := info.Types[cl]; ok && tv.Type != nil {
		return tv.Type.String()
	}
	return "T"
}
