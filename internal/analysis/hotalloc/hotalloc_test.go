package hotalloc_test

import (
	"path/filepath"
	"testing"

	"geompc/internal/analysis/checkertest"
	"geompc/internal/analysis/hotalloc"
)

// TestFixture covers every allocation shape inside //geompc:hot functions
// (composite literals, make/new, closures, non-self appends), the allowed
// freelist/self-append idioms, the nolint escape hatch, and that untagged
// functions are ignored.
func TestFixture(t *testing.T) {
	dir := filepath.Join("..", "testdata", "src", "hotalloc")
	checkertest.Run(t, dir, "geompc/internal/runtime", hotalloc.Analyzer)
}
