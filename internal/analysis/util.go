package analysis

import (
	"go/ast"
	"go/types"
	"path"
)

// Shared AST/type helpers the concrete analyzers lean on.

// PkgBase returns the last element of the pass's package import path —
// analyzers scope themselves by it ("runtime", "obs", "fp16", ...), which
// works identically for the real tree (geompc/internal/runtime) and for
// fixtures that claim a path under testdata.
func PkgBase(p *Pass) string { return path.Base(p.Pkg.Path()) }

// CalleePkgFunc resolves call's callee to a package-level function and
// returns its package import path and name ("time", "Now"). ok is false for
// method calls, builtins, conversions and locals.
func CalleePkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isID := sel.X.(*ast.Ident)
	if !isID {
		return "", "", false
	}
	if _, isPkg := info.Uses[id].(*types.PkgName); !isPkg {
		return "", "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return "", "", false
	}
	if fn.Pkg() == nil {
		return "", "", false
	}
	return fn.Pkg().Path(), fn.Name(), true
}

// IsBuiltinCall reports whether call invokes the named builtin (append,
// make, new, delete, ...).
func IsBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// IsConversion reports whether call is a type conversion, returning the
// target type.
func IsConversion(info *types.Info, call *ast.CallExpr) (types.Type, bool) {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil, false
	}
	return tv.Type, true
}

// IsMap reports whether e's type is (or is named with underlying) a map.
func IsMap(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// BasicKind returns e's basic-type kind after stripping names, or
// types.Invalid when e is not of basic type.
func BasicKind(info *types.Info, e ast.Expr) types.BasicKind {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return types.Invalid
	}
	b, isBasic := tv.Type.Underlying().(*types.Basic)
	if !isBasic {
		return types.Invalid
	}
	return b.Kind()
}

// IsConstant reports whether e is a compile-time constant expression (its
// conversion is exact and deterministic, so precision checks skip it).
func IsConstant(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// MutexMethod resolves call to a method on sync.Mutex or sync.RWMutex
// (including promoted embedded fields) and returns the method name and the
// receiver expression as written ("e.mu"). ok is false otherwise.
func MutexMethod(info *types.Info, call *ast.CallExpr) (recv string, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return "", "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return "", "", false
	}
	rt := sig.Recv().Type()
	if p, isPtr := rt.(*types.Pointer); isPtr {
		rt = p.Elem()
	}
	named, isNamed := rt.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", "", false
	}
	if obj.Name() != "Mutex" && obj.Name() != "RWMutex" {
		return "", "", false
	}
	return types.ExprString(sel.X), fn.Name(), true
}

// ContainsMutex reports whether a value of type t holds a sync.Mutex or
// sync.RWMutex by value (directly, in a struct field, or in an array
// element) — i.e. whether copying the value copies a lock.
func ContainsMutex(t types.Type) bool {
	return containsMutex(t, make(map[types.Type]bool))
}

func containsMutex(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && (obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			return true
		}
		return containsMutex(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsMutex(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsMutex(u.Elem(), seen)
	}
	return false
}
