package detercheck_test

import (
	"path/filepath"
	"testing"

	"geompc/internal/analysis/checkertest"
	"geompc/internal/analysis/detercheck"
)

func fixture(elem ...string) string {
	return filepath.Join(append([]string{"..", "testdata", "src", "detercheck"}, elem...)...)
}

// TestRestricted runs the fixture as a virtual-clock package: map-order
// leaks, time.Now and global rand are flagged; sorted collection,
// commutative bodies, faults.go and seeded construction are not.
func TestRestricted(t *testing.T) {
	checkertest.Run(t, fixture("restricted"), "geompc/internal/runtime", detercheck.Analyzer)
}

// TestFree runs the same shapes as a package outside the deterministic set:
// nothing is flagged.
func TestFree(t *testing.T) {
	checkertest.Run(t, fixture("free"), "geompc/internal/geo", detercheck.Analyzer)
}
