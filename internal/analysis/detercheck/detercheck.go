// Package detercheck enforces the repo's determinism contract: the engine
// runs on a virtual clock, and its schedules, digests, traces and metrics
// snapshots are golden-pinned bit-for-bit. Two things silently break that —
// map iteration order leaking into ordered output, and wall-clock or
// global-RNG state entering a simulation package — and both only surface
// later as flaky golden-test failures. This analyzer flags them at compile
// time.
//
// Two rules:
//
//   - In the virtual-clock packages (runtime, sched, comm, cholesky) no code
//     may call time.Now or a math/rand global-source convenience function
//     (rand.Intn, rand.Float64, ...). Seeded construction (rand.New,
//     rand.NewSource, rand.NewPCG) is allowed, as are _test.go files and
//     faults.go, whose injector owns the repo's one seeded source.
//
//   - In those packages plus obs (which renders digests, traces and metrics
//     snapshots) a `for range` over a map is flagged unless its iteration
//     order provably cannot escape: either every statement in the body is
//     order-insensitive (map writes/deletes keyed by the range variable,
//     integer counter updates), or the body only collects into slices that
//     are later passed to a sort call in the same function.
package detercheck

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"

	"geompc/internal/analysis"
)

// Analyzer is the detercheck instance registered with the driver.
var Analyzer = &analysis.Analyzer{
	Name: "detercheck",
	Doc:  "flags map-iteration-order leaks and wall-clock/global-rand use in the deterministic packages",
	Run:  run,
}

// clockPkgs run entirely on the virtual clock: wall-clock time and global
// randomness are banned outright.
var clockPkgs = map[string]bool{
	"runtime": true, "sched": true, "comm": true, "cholesky": true,
	"solver": true, "cg": true,
}

// orderPkgs additionally includes obs, where map iteration order can leak
// into rendered digests, traces and metric snapshots.
var orderPkgs = map[string]bool{
	"runtime": true, "sched": true, "comm": true, "cholesky": true, "obs": true,
	"solver": true, "cg": true,
}

func run(pass *analysis.Pass) {
	base := analysis.PkgBase(pass)
	checkClock := clockPkgs[base]
	checkOrder := orderPkgs[base]
	if !checkClock && !checkOrder {
		return
	}
	for _, f := range pass.Files {
		file := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		// faults.go owns the seeded injector; tests may seed freely.
		clockAllowed := strings.HasSuffix(file, "_test.go") || file == "faults.go"
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if checkClock && !clockAllowed {
						checkClockCall(pass, n)
					}
				case *ast.RangeStmt:
					if checkOrder {
						checkMapRange(pass, fd, n)
					}
				}
				return true
			})
		}
	}
}

// checkClockCall flags time.Now and math/rand global-source calls.
func checkClockCall(pass *analysis.Pass, call *ast.CallExpr) {
	pkg, name, ok := analysis.CalleePkgFunc(pass.Info, call)
	if !ok {
		return
	}
	switch pkg {
	case "time":
		if name == "Now" {
			pass.Reportf(call.Pos(), "time.Now in a virtual-clock package: simulation time must come from the engine clock")
		}
	case "math/rand", "math/rand/v2":
		// Constructors (rand.New, rand.NewSource, rand.NewPCG, ...) build
		// seeded sources and are fine; everything else draws from the
		// package-global source.
		if !strings.HasPrefix(name, "New") {
			pass.Reportf(call.Pos(), "%s.%s uses the global rand source in a virtual-clock package: draw from a seeded *rand.Rand instead", pkg, name)
		}
	}
}

// checkMapRange flags nondeterministically ordered map iteration.
func checkMapRange(pass *analysis.Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) {
	if !analysis.MapRangeEscapes(pass.Info, fn.Body, rng) {
		return
	}
	pass.Reportf(rng.Pos(), "range over map %s: iteration order is nondeterministic and can leak into digests/schedules/traces — iterate sorted keys instead", types.ExprString(rng.X))
}
