// Package detercheck enforces the repo's determinism contract: the engine
// runs on a virtual clock, and its schedules, digests, traces and metrics
// snapshots are golden-pinned bit-for-bit. Two things silently break that —
// map iteration order leaking into ordered output, and wall-clock or
// global-RNG state entering a simulation package — and both only surface
// later as flaky golden-test failures. This analyzer flags them at compile
// time.
//
// Two rules:
//
//   - In the virtual-clock packages (runtime, sched, comm, cholesky) no code
//     may call time.Now or a math/rand global-source convenience function
//     (rand.Intn, rand.Float64, ...). Seeded construction (rand.New,
//     rand.NewSource, rand.NewPCG) is allowed, as are _test.go files and
//     faults.go, whose injector owns the repo's one seeded source.
//
//   - In those packages plus obs (which renders digests, traces and metrics
//     snapshots) a `for range` over a map is flagged unless its iteration
//     order provably cannot escape: either every statement in the body is
//     order-insensitive (map writes/deletes keyed by the range variable,
//     integer counter updates), or the body only collects into slices that
//     are later passed to a sort call in the same function.
package detercheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"geompc/internal/analysis"
)

// Analyzer is the detercheck instance registered with the driver.
var Analyzer = &analysis.Analyzer{
	Name: "detercheck",
	Doc:  "flags map-iteration-order leaks and wall-clock/global-rand use in the deterministic packages",
	Run:  run,
}

// clockPkgs run entirely on the virtual clock: wall-clock time and global
// randomness are banned outright.
var clockPkgs = map[string]bool{
	"runtime": true, "sched": true, "comm": true, "cholesky": true,
	"solver": true, "cg": true,
}

// orderPkgs additionally includes obs, where map iteration order can leak
// into rendered digests, traces and metric snapshots.
var orderPkgs = map[string]bool{
	"runtime": true, "sched": true, "comm": true, "cholesky": true, "obs": true,
	"solver": true, "cg": true,
}

func run(pass *analysis.Pass) {
	base := analysis.PkgBase(pass)
	checkClock := clockPkgs[base]
	checkOrder := orderPkgs[base]
	if !checkClock && !checkOrder {
		return
	}
	for _, f := range pass.Files {
		file := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		// faults.go owns the seeded injector; tests may seed freely.
		clockAllowed := strings.HasSuffix(file, "_test.go") || file == "faults.go"
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if checkClock && !clockAllowed {
						checkClockCall(pass, n)
					}
				case *ast.RangeStmt:
					if checkOrder {
						checkMapRange(pass, fd, n)
					}
				}
				return true
			})
		}
	}
}

// checkClockCall flags time.Now and math/rand global-source calls.
func checkClockCall(pass *analysis.Pass, call *ast.CallExpr) {
	pkg, name, ok := analysis.CalleePkgFunc(pass.Info, call)
	if !ok {
		return
	}
	switch pkg {
	case "time":
		if name == "Now" {
			pass.Reportf(call.Pos(), "time.Now in a virtual-clock package: simulation time must come from the engine clock")
		}
	case "math/rand", "math/rand/v2":
		// Constructors (rand.New, rand.NewSource, rand.NewPCG, ...) build
		// seeded sources and are fine; everything else draws from the
		// package-global source.
		if !strings.HasPrefix(name, "New") {
			pass.Reportf(call.Pos(), "%s.%s uses the global rand source in a virtual-clock package: draw from a seeded *rand.Rand instead", pkg, name)
		}
	}
}

// checkMapRange flags nondeterministically ordered map iteration.
func checkMapRange(pass *analysis.Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) {
	if !analysis.IsMap(pass.Info, rng.X) {
		return
	}
	if orderInsensitiveBody(pass.Info, rng.Body.List) {
		return
	}
	if targets, ok := appendOnlyBody(pass.Info, rng.Body.List); ok && sortedAfter(pass.Info, fn, rng.End(), targets) {
		return
	}
	pass.Reportf(rng.Pos(), "range over map %s: iteration order is nondeterministic and can leak into digests/schedules/traces — iterate sorted keys instead", types.ExprString(rng.X))
}

// orderInsensitiveBody reports whether every statement commutes across
// iterations: map index writes and deletes (distinct keys per iteration),
// integer/bool counter updates, and continue. Floating-point accumulation is
// deliberately not on the list — float addition does not commute bit-exactly.
func orderInsensitiveBody(info *types.Info, stmts []ast.Stmt) bool {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.AssignStmt:
			if !orderInsensitiveAssign(info, s) {
				return false
			}
		case *ast.IncDecStmt:
			if !integerKind(analysis.BasicKind(info, s.X)) {
				return false
			}
		case *ast.ExprStmt:
			call, ok := s.X.(*ast.CallExpr)
			if !ok || !analysis.IsBuiltinCall(info, call, "delete") {
				return false
			}
		case *ast.BranchStmt:
			if s.Tok != token.CONTINUE {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func orderInsensitiveAssign(info *types.Info, s *ast.AssignStmt) bool {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	if _, isIndex := s.Lhs[0].(*ast.IndexExpr); isIndex {
		// m[k] = v / m[k] += v: one key per iteration, order-free as long as
		// the indexed container is a map (slice writes at computed indexes
		// would also be fine, but keep to the common case).
		return analysis.IsMap(info, s.Lhs[0].(*ast.IndexExpr).X)
	}
	switch s.Tok {
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		return integerKind(analysis.BasicKind(info, s.Lhs[0]))
	}
	return false
}

func integerKind(k types.BasicKind) bool {
	switch k {
	case types.Int, types.Int8, types.Int16, types.Int32, types.Int64,
		types.Uint, types.Uint8, types.Uint16, types.Uint32, types.Uint64, types.Uintptr:
		return true
	}
	return false
}

// appendOnlyBody reports whether the body only appends to local slices,
// returning the rendered append targets.
func appendOnlyBody(info *types.Info, stmts []ast.Stmt) (targets []string, ok bool) {
	for _, s := range stmts {
		as, isAssign := s.(*ast.AssignStmt)
		if !isAssign || len(as.Lhs) != 1 || len(as.Rhs) != 1 || as.Tok != token.ASSIGN {
			return nil, false
		}
		call, isCall := as.Rhs[0].(*ast.CallExpr)
		if !isCall || !analysis.IsBuiltinCall(info, call, "append") || len(call.Args) == 0 {
			return nil, false
		}
		lhs := types.ExprString(as.Lhs[0])
		if lhs != types.ExprString(call.Args[0]) {
			return nil, false
		}
		targets = append(targets, lhs)
	}
	return targets, len(targets) > 0
}

// sortedAfter reports whether, after pos, fn calls into package sort or
// slices with one of the append targets among the arguments — the
// collect-then-sort idiom that launders map order away.
func sortedAfter(info *types.Info, fn *ast.FuncDecl, pos token.Pos, targets []string) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		pkg, _, ok := analysis.CalleePkgFunc(info, call)
		if !ok || (pkg != "sort" && pkg != "slices") {
			return true
		}
		for _, arg := range call.Args {
			a := types.ExprString(arg)
			for _, t := range targets {
				if a == t {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}
