package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive grammar. Two directives are recognized, both spelled with the
// machine-directive comment form (no space after //, like //go:noinline):
//
//	//geompc:nolint <analyzer> <reason...>
//	    Suppresses <analyzer>'s diagnostics on the directive's line — either
//	    a trailing comment on the flagged line itself or a full-line comment
//	    directly above it. The reason is mandatory; a bare suppression is
//	    itself a diagnostic, as is naming an unknown analyzer or leaving a
//	    directive in place once the diagnostic it suppressed is gone
//	    (an "expired" suppression).
//
//	//geompc:hot
//	    In a function's doc comment, opts the function into the hotalloc
//	    analyzer's allocation checks.

const (
	nolintPrefix = "//geompc:nolint"
	hotDirective = "//geompc:hot"
)

// Nolint is one parsed //geompc:nolint directive.
type Nolint struct {
	// Pos is the directive's own position (for meta-diagnostics).
	Pos token.Pos
	// Line is the source line the directive applies to: its own line for a
	// trailing comment, the following line for a comment on its own line.
	Line int
	File string
	// Analyzer is the first word after the directive ("" when absent).
	Analyzer string
	// Reason is everything after the analyzer name, trimmed.
	Reason string
	// used is set by the driver when the directive suppressed a diagnostic.
	used bool
}

// parseNolints collects every nolint directive in the file, resolving each
// to the line it governs. A comment group's position relative to the code on
// its line decides trailing vs. standalone: a comment that starts a line
// governs the next line, any other governs its own.
func parseNolints(fset *token.FileSet, f *ast.File) []*Nolint {
	var out []*Nolint
	codeLines := codeEndLines(fset, f)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if text != nolintPrefix && !strings.HasPrefix(text, nolintPrefix+" ") {
				continue
			}
			pos := fset.Position(c.Pos())
			n := &Nolint{Pos: c.Pos(), Line: pos.Line, File: pos.Filename}
			if !codeLines[pos.Line] {
				// Full-line comment: governs the line below.
				n.Line = pos.Line + 1
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, nolintPrefix))
			if rest != "" {
				fields := strings.SplitN(rest, " ", 2)
				n.Analyzer = fields[0]
				if len(fields) == 2 {
					n.Reason = strings.TrimSpace(fields[1])
				}
			}
			out = append(out, n)
		}
	}
	return out
}

// codeEndLines returns the set of lines on which some non-comment syntax
// node ends — the lines where a comment can only be trailing code. One walk
// per file, shared by every directive in it.
func codeEndLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return false
		}
		lines[fset.Position(n.End()).Line] = true
		return true
	})
	return lines
}

// HotFuncs returns every function declaration in the file whose doc comment
// carries //geompc:hot.
func HotFuncs(f *ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		for _, c := range fd.Doc.List {
			if c.Text == hotDirective || strings.HasPrefix(c.Text, hotDirective+" ") {
				out = append(out, fd)
				break
			}
		}
	}
	return out
}
