package analysis

// Whole-program view: a deterministic call graph over every module-local
// package plus a summary cache, built once per lint run and shared by the
// interprocedural analyzers (precflow, deterflow, contractcheck and the
// transitive half of hotalloc). The graph is conservative where Go is
// dynamic — interface calls resolve to every method in the program with a
// matching name and signature (class-hierarchy analysis), closures and
// method values add "ref" edges from the function that creates the value —
// and silent where it cannot resolve at all (calls through arbitrary
// function-typed values), which DESIGN.md §6j documents as the engine's
// soundness boundary.
//
// Everything about the graph is deterministic: functions are keyed by a
// stable string ID (pkgpath.(Recv).Name, closures pkgpath.Parent$n in
// source order), edges are discovered in AST order, dispatch candidates are
// sorted by ID, and SCCs come out of Tarjan's algorithm seeded in ID order.
// Two runs over the same tree therefore report byte-identical diagnostics.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"sort"
	"strings"
	"sync"
)

// Program is the whole-program analysis state shared by one driver run.
type Program struct {
	// Module is the module import-path prefix ("geompc"); packages under it
	// are "local" and contribute ASTs to the call graph. Empty means every
	// package in All is local (the fixture case).
	Module string
	// Roots are the packages being linted (diagnostics are reported here).
	Roots []*Package
	// All is every AST-bearing package the graph covers: the roots plus
	// module-local dependencies, in import-path order.
	All []*Package

	graphOnce sync.Once
	funcs     map[string]*Func // by ID
	funcList  []*Func          // ID order
	sccs      [][]*Func        // bottom-up (callees before callers)
	methodIdx map[string][]*Func

	mu         sync.Mutex
	memo       map[string]*memoEntry
	pkgNolints map[*Package][]*Nolint       // parsed directives per package
	nolintIdx  map[string]map[int][]*Nolint // file → line → directives
}

// EdgeKind distinguishes a genuine call from a reference that may become
// one (a closure or method value handed somewhere else).
type EdgeKind int

const (
	// EdgeCall is a call expression resolved to its callee(s).
	EdgeCall EdgeKind = iota
	// EdgeRef is a function value being created or passed: a closure
	// literal, a method value, or a named function used as a value. The
	// holder may invoke it, so flow analyses treat it as a may-call.
	EdgeRef
)

// Edge is one resolved call-graph edge to a function with source in the
// program.
type Edge struct {
	Kind   EdgeKind
	Pos    token.Pos
	Callee *Func
}

// ExternEdge is a call or reference to a function outside the loaded
// source (standard library or assembly): no body to walk, so analyzers
// model these with intrinsic tables.
type ExternEdge struct {
	Kind    EdgeKind
	Pos     token.Pos
	PkgPath string
	Recv    string // receiver type name for methods, "" for functions
	Name    string
}

// Func is one node of the call graph: a declared function, a method, or a
// function literal (closure).
type Func struct {
	// ID is the stable key: "pkg.Name", "pkg.(Recv).Name", or for
	// closures "parentID$n" with n counting literals in source order.
	ID string
	// Name is the short display form used in diagnostic chains.
	Name string
	Pkg  *Package
	Pos  token.Pos
	Decl *ast.FuncDecl // nil for closures
	Lit  *ast.FuncLit  // nil for declared functions
	// Edges are in-program callees/references in AST order.
	Edges []Edge
	// Extern are out-of-program callees/references in AST order.
	Extern []ExternEdge
}

// Body returns the function's body block (nil for body-less declarations).
func (f *Func) Body() *ast.BlockStmt {
	if f.Lit != nil {
		return f.Lit.Body
	}
	if f.Decl != nil {
		return f.Decl.Body
	}
	return nil
}

// ProgramFromPackages wraps already-loaded packages (fixtures, tests) as a
// whole program: every package is both root and local.
func ProgramFromPackages(pkgs []*Package) *Program {
	return &Program{Roots: pkgs, All: pkgs}
}

// FuncByID resolves a graph node by its stable ID.
func (p *Program) FuncByID(id string) *Func {
	p.buildGraph()
	return p.funcs[id]
}

// FuncOf maps an in-program *types.Func (from any root's type-check
// universe) to its graph node, nil when the function lives outside the
// loaded source.
func (p *Program) FuncOf(fn *types.Func) *Func {
	p.buildGraph()
	return p.localFunc(fn)
}

// Funcs returns every graph node in ID order.
func (p *Program) Funcs() []*Func {
	p.buildGraph()
	return p.funcList
}

// SCCs returns the strongly-connected components of the call graph in
// bottom-up order: every edge out of a later component lands in an earlier
// one, so summary evaluation can run callees-first.
func (p *Program) SCCs() [][]*Func {
	p.buildGraph()
	return p.sccs
}

// memoEntry makes each Memo key compute exactly once without holding the
// program mutex across the build — builds recurse into other Program
// methods (SuppressedAt, Flow) that take the same lock.
type memoEntry struct {
	once sync.Once
	v    any
}

// Memo computes-or-returns a named program-wide result. Analyzer Prepare
// hooks use it so shared summaries (the nondeterminism facts used by both
// deterflow and contractcheck) are evaluated once. build may call back
// into the Program (including Memo with a *different* key); a key must not
// recursively Memo itself.
func (p *Program) Memo(key string, build func() any) any {
	p.mu.Lock()
	if p.memo == nil {
		p.memo = make(map[string]*memoEntry)
	}
	e, ok := p.memo[key]
	if !ok {
		e = &memoEntry{}
		p.memo[key] = e
	}
	p.mu.Unlock()
	e.once.Do(func() { e.v = build() })
	return e.v
}

// funcID builds the stable ID for a package-level function or method.
func funcID(pkgPath, recv, name string) string {
	if recv != "" {
		return pkgPath + ".(" + recv + ")." + name
	}
	return pkgPath + "." + name
}

// recvName returns the named receiver type of sig ("" for plain
// functions), with any pointer stripped.
func recvName(sig *types.Signature) string {
	r := sig.Recv()
	if r == nil {
		return ""
	}
	t := r.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// objFuncID keys a *types.Func the same way regardless of which package's
// type universe produced it (the loader may hold several types.Package
// instances for one import path; string IDs unify them).
func objFuncID(fn *types.Func) string {
	fn = fn.Origin() // canonicalize generic instantiations
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return funcID(pkg.Path(), "", fn.Name())
	}
	return funcID(pkg.Path(), recvName(sig), fn.Name())
}

// sigKey renders a method signature with the receiver stripped, qualified
// by full package path — the dispatch key for class-hierarchy analysis: an
// interface method and every concrete method implementing it share it.
func sigKey(name string, sig *types.Signature) string {
	bare := types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
	return name + "|" + types.TypeString(bare, func(p *types.Package) string { return p.Path() })
}

// buildGraph indexes every function in the local packages and resolves
// their edges. Idempotent and cheap relative to type checking.
func (p *Program) buildGraph() {
	p.graphOnce.Do(func() {
		p.funcs = make(map[string]*Func)
		p.methodIdx = make(map[string][]*Func)
		for _, pkg := range p.All {
			p.indexPackage(pkg)
		}
		p.funcList = make([]*Func, 0, len(p.funcs))
		for _, f := range p.funcs {
			p.funcList = append(p.funcList, f)
		}
		sort.Slice(p.funcList, func(i, j int) bool { return p.funcList[i].ID < p.funcList[j].ID })
		for _, fn := range p.funcList {
			p.resolveEdges(fn)
		}
		p.sccs = tarjanSCC(p.funcList)
	})
}

// indexPackage creates Func nodes for every declared function/method and
// every function literal in pkg (closure IDs count literals per parent in
// source order; files arrive in the loader's sorted order).
func (p *Program) indexPackage(pkg *Package) {
	litCount := make(map[string]int)
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				obj, _ := pkg.Info.Defs[d.Name].(*types.Func)
				if obj == nil {
					continue
				}
				id := objFuncID(obj)
				fn := &Func{ID: id, Name: displayName(pkg, d), Pkg: pkg, Pos: d.Pos(), Decl: d}
				p.funcs[id] = fn
				if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil && d.Body != nil {
					key := sigKey(obj.Name(), sig)
					p.methodIdx[key] = append(p.methodIdx[key], fn)
				}
				if d.Body != nil {
					p.indexLits(pkg, id, fn.Name, d.Body, litCount)
				}
			case *ast.GenDecl:
				// Package-level literals (var F = func() {...}) hang off a
				// synthetic per-package parent so they still get stable IDs.
				p.indexLits(pkg, pkg.Path+".init", "init", d, litCount)
			}
		}
	}
	// Dispatch candidates must be in deterministic order however map
	// iteration shuffled the build.
	for _, fns := range p.methodIdx {
		sort.Slice(fns, func(i, j int) bool { return fns[i].ID < fns[j].ID })
	}
}

// indexLits registers every function literal under root with IDs
// parentID$n in source order, nesting included (a literal inside a literal
// gets the inner literal as parent).
func (p *Program) indexLits(pkg *Package, parentID, parentName string, root ast.Node, litCount map[string]int) {
	var walk func(n ast.Node, parentID, parentName string)
	walk = func(n ast.Node, parentID, parentName string) {
		ast.Inspect(n, func(m ast.Node) bool {
			lit, ok := m.(*ast.FuncLit)
			if !ok {
				return true
			}
			litCount[parentID]++
			id := fmt.Sprintf("%s$%d", parentID, litCount[parentID])
			name := fmt.Sprintf("%s$%d", parentName, litCount[parentID])
			p.funcs[id] = &Func{ID: id, Name: name, Pkg: pkg, Pos: lit.Pos(), Lit: lit}
			walk(lit.Body, id, name)
			return false
		})
	}
	walk(root, parentID, parentName)
}

// displayName is the short human form for chains: "F", "(T).M".
func displayName(pkg *Package, d *ast.FuncDecl) string {
	base := path.Base(pkg.Path)
	if d.Recv != nil && len(d.Recv.List) > 0 {
		return fmt.Sprintf("%s.(%s).%s", base, recvTypeName(d.Recv.List[0].Type), d.Name.Name)
	}
	return base + "." + d.Name.Name
}

func recvTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr: // generic receiver T[P]
		return recvTypeName(e.X)
	case *ast.IndexListExpr:
		return recvTypeName(e.X)
	}
	return "?"
}

// localID maps an in-program *types.Func to its node, nil when the
// function lives outside the loaded source.
func (p *Program) localFunc(fn *types.Func) *Func {
	return p.funcs[objFuncID(fn)]
}

// resolveEdges walks fn's body (excluding nested literals, which are their
// own nodes) and records call/ref edges.
func (p *Program) resolveEdges(fn *Func) {
	body := fn.Body()
	if body == nil {
		return
	}
	info := fn.Pkg.Info
	// funcVals maps single-assignment local variables to the literal they
	// hold, resolving the `f := func(){...}; f()` idiom.
	funcVals := p.singleAssignLits(fn, body)

	skip := make(map[ast.Node]bool) // call-position nodes already handled
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal appearing as a value: the enclosing function
			// creates (and may later invoke) the closure. Never descend —
			// the literal's body belongs to its own node.
			if !skip[n] {
				p.addLitEdge(fn, EdgeRef, n)
			}
			return false
		case *ast.CallExpr:
			p.resolveCallEdge(fn, info, n, funcVals, skip)
		case *ast.Ident:
			if skip[n] {
				return true
			}
			if callee, ok := info.Uses[n].(*types.Func); ok {
				p.addObjEdge(fn, EdgeRef, n.Pos(), callee)
			}
		case *ast.SelectorExpr:
			if skip[n] {
				return true
			}
			p.resolveSelectorRef(fn, info, n)
			skip[n.Sel] = true
		}
		return true
	})
}

// singleAssignLits finds local variables assigned exactly one function
// literal and never reassigned anywhere in the function.
func (p *Program) singleAssignLits(fn *Func, body *ast.BlockStmt) map[types.Object]*Func {
	info := fn.Pkg.Info
	assigns := make(map[types.Object]int)
	lits := make(map[types.Object]*Func)
	record := func(lhs, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
		assigns[obj]++
		if lit, ok := rhs.(*ast.FuncLit); ok {
			lits[obj] = p.litFunc(fn.Pkg, lit)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	out := make(map[types.Object]*Func)
	for obj, lit := range lits {
		if assigns[obj] == 1 && lit != nil {
			out[obj] = lit
		}
	}
	return out
}

// litFunc finds the node registered for a literal by position.
func (p *Program) litFunc(pkg *Package, lit *ast.FuncLit) *Func {
	for _, f := range p.funcs {
		if f.Pkg == pkg && f.Lit == lit {
			return f
		}
	}
	return nil
}

func (p *Program) addLitEdge(fn *Func, kind EdgeKind, lit *ast.FuncLit) {
	if callee := p.litFunc(fn.Pkg, lit); callee != nil {
		fn.Edges = append(fn.Edges, Edge{Kind: kind, Pos: lit.Pos(), Callee: callee})
	}
}

// addObjEdge records an edge to a resolved *types.Func — in-program when a
// node exists, extern otherwise.
func (p *Program) addObjEdge(fn *Func, kind EdgeKind, pos token.Pos, callee *types.Func) {
	callee = callee.Origin()
	if local := p.localFunc(callee); local != nil {
		fn.Edges = append(fn.Edges, Edge{Kind: kind, Pos: pos, Callee: local})
		return
	}
	if callee.Pkg() == nil {
		return
	}
	recv := ""
	if sig, ok := callee.Type().(*types.Signature); ok {
		recv = recvName(sig)
	}
	fn.Extern = append(fn.Extern, ExternEdge{Kind: kind, Pos: pos, PkgPath: callee.Pkg().Path(), Recv: recv, Name: callee.Name()})
}

// resolveCallEdge classifies one call expression.
func (p *Program) resolveCallEdge(fn *Func, info *types.Info, call *ast.CallExpr, funcVals map[types.Object]*Func, skip map[ast.Node]bool) {
	fun := ast.Unparen(call.Fun)
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return // conversion, operand walked normally
	}
	switch fun := fun.(type) {
	case *ast.FuncLit:
		// Immediately-invoked literal: a call edge, and the outer walk's
		// FuncLit case must not also record a ref.
		p.addLitEdge(fn, EdgeCall, fun)
		skip[fun] = true
	case *ast.Ident:
		skip[fun] = true
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			p.addObjEdge(fn, EdgeCall, call.Pos(), obj)
		case *types.Var:
			if lit := funcVals[obj]; lit != nil {
				fn.Edges = append(fn.Edges, Edge{Kind: EdgeCall, Pos: call.Pos(), Callee: lit})
			}
			// Other function-typed variables (parameters, fields) are the
			// unresolved dynamic-call frontier; ref edges at the value's
			// creation site keep flow analyses conservative there.
		}
	case *ast.SelectorExpr:
		skip[fun] = true
		skip[fun.Sel] = true
		if sel, ok := info.Selections[fun]; ok {
			if m, ok := sel.Obj().(*types.Func); ok {
				sig, _ := m.Type().(*types.Signature)
				if sig != nil && sig.Recv() != nil {
					if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
						p.addDispatchEdges(fn, EdgeCall, call.Pos(), m, sig)
						return
					}
				}
				p.addObjEdge(fn, EdgeCall, call.Pos(), m)
				return
			}
		}
		// Package-qualified function: obs.NewDigest.
		if obj, ok := info.Uses[fun.Sel].(*types.Func); ok {
			p.addObjEdge(fn, EdgeCall, call.Pos(), obj)
		}
	}
}

// addDispatchEdges resolves an interface method by class-hierarchy
// analysis: every in-program method with the same name and bare signature
// is a candidate callee, in ID order.
func (p *Program) addDispatchEdges(fn *Func, kind EdgeKind, pos token.Pos, m *types.Func, sig *types.Signature) {
	for _, cand := range p.methodIdx[sigKey(m.Name(), sig)] {
		fn.Edges = append(fn.Edges, Edge{Kind: kind, Pos: pos, Callee: cand})
	}
	if m.Pkg() != nil {
		fn.Extern = append(fn.Extern, ExternEdge{Kind: kind, Pos: pos, PkgPath: m.Pkg().Path(), Recv: recvName(sig), Name: m.Name()})
	}
}

// resolveSelectorRef handles method values (x.M used as a value, which
// allocates a bound closure) and package-function references.
func (p *Program) resolveSelectorRef(fn *Func, info *types.Info, sel *ast.SelectorExpr) {
	if s, ok := info.Selections[sel]; ok {
		if s.Kind() == types.MethodVal || s.Kind() == types.MethodExpr {
			if m, ok := s.Obj().(*types.Func); ok {
				sig, _ := m.Type().(*types.Signature)
				if sig != nil && sig.Recv() != nil {
					if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
						p.addDispatchEdges(fn, EdgeRef, sel.Pos(), m, sig)
						return
					}
				}
				p.addObjEdge(fn, EdgeRef, sel.Pos(), m)
			}
		}
		return
	}
	if obj, ok := info.Uses[sel.Sel].(*types.Func); ok {
		p.addObjEdge(fn, EdgeRef, sel.Pos(), obj)
	}
}

// tarjanSCC computes strongly-connected components over all edges, in
// bottom-up order (each component is emitted only after every component it
// calls into).
func tarjanSCC(funcs []*Func) [][]*Func {
	index := make(map[*Func]int)
	low := make(map[*Func]int)
	onStack := make(map[*Func]bool)
	var stack []*Func
	var sccs [][]*Func
	next := 0

	// Iterative Tarjan, seeded in ID order for determinism.
	type frame struct {
		fn   *Func
		edge int
	}
	var visit func(root *Func)
	visit = func(root *Func) {
		frames := []frame{{fn: root}}
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			fn := f.fn
			if f.edge == 0 {
				index[fn] = next
				low[fn] = next
				next++
				stack = append(stack, fn)
				onStack[fn] = true
			}
			advanced := false
			for f.edge < len(fn.Edges) {
				w := fn.Edges[f.edge].Callee
				f.edge++
				if _, seen := index[w]; !seen {
					frames = append(frames, frame{fn: w})
					advanced = true
					break
				} else if onStack[w] {
					if index[w] < low[fn] {
						low[fn] = index[w]
					}
				}
			}
			if advanced {
				continue
			}
			if low[fn] == index[fn] {
				var scc []*Func
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == fn {
						break
					}
				}
				sort.Slice(scc, func(i, j int) bool { return scc[i].ID < scc[j].ID })
				sccs = append(sccs, scc)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].fn
				if low[fn] < low[parent] {
					low[parent] = low[fn]
				}
			}
		}
	}
	for _, fn := range funcs {
		if _, seen := index[fn]; !seen {
			visit(fn)
		}
	}
	return sccs
}

// LocalPkg reports whether path belongs to the analyzed module.
func (p *Program) LocalPkg(path string) bool {
	if p.Module == "" {
		return true
	}
	return path == p.Module || strings.HasPrefix(path, p.Module+"/")
}
