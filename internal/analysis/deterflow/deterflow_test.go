package deterflow_test

import (
	"path/filepath"
	"testing"

	"geompc/internal/analysis"
	"geompc/internal/analysis/checkertest"
	"geompc/internal/analysis/deterflow"
)

func fixture(elem ...string) string {
	return filepath.Join(append([]string{"..", "testdata", "src", "deterflow"}, elem...)...)
}

// TestSinkBoundary loads a helper package outside the deterministic set and
// a sink package (base "sched") calling into it: taint from time.Now, the
// global rand source and escaping map ranges is flagged at the sink's call
// and reference edges; sorted collection, seeded sources and reasoned
// suppressions are not. The helper package itself reports nothing.
func TestSinkBoundary(t *testing.T) {
	checkertest.RunDirs(t, []analysis.DirSpec{
		{Dir: fixture("helpers"), ImportPath: "geompc/internal/core"},
		{Dir: fixture("sink"), ImportPath: "geompc/internal/sched"},
	}, deterflow.Analyzer)
}
