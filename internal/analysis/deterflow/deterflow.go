// Package deterflow is the interprocedural half of the determinism
// contract. AST-level detercheck inspects only the bodies of functions in
// the deterministic packages, so a nondeterminism source hidden one call
// away — a helper in internal/core that ranges over a map and returns the
// keys, a utility that reads time.Now — is provably invisible to it. This
// analyzer closes that gap with a whole-program taint pass:
//
//   - Sources (in ANY module package): wall-clock reads (time.Now),
//     math/rand global-source draws, and map iteration whose order can
//     escape (the same escape heuristics as detercheck: order-insensitive
//     bodies and the collect-then-sort idiom are clean). Sites carrying a
//     reasoned //geompc:nolint for detercheck or deterflow are treated as
//     audited and do not taint callers. faults.go keeps its detercheck
//     exemption: the injector owns the repo's one seeded source.
//
//   - Sinks: the deterministic packages — the virtual-clock spine
//     (runtime, sched, comm, cholesky, solver, cg) plus the packages that
//     render digests, schedules, traces and metrics (obs, plan). Anything
//     their golden digests consume must be reproducible bit-for-bit.
//
// Facts propagate bottom-up over call-graph SCCs, through interface
// dispatch (every matching method), closures and method values (creating
// or passing a tainted function value taints the holder — callbacks are
// how nondeterminism usually sneaks into the engine). A finding is a call
// or reference *from* a sink package *to* a function outside the sink set
// whose summary is tainted; sources directly inside sink packages stay
// detercheck's findings, so the two analyzers never double-report.
package deterflow

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"

	"geompc/internal/analysis"
)

// Name is the analyzer name, usable in //geompc:nolint directives.
const Name = "deterflow"

// Analyzer is the deterflow instance registered with the driver.
var Analyzer = &analysis.Analyzer{
	Name:    Name,
	Doc:     "flags call chains that carry nondeterminism (wall clock, global rand, map order) into the deterministic packages",
	Prepare: prepare,
	Run:     run,
}

// SinkPkgs are the deterministic packages: detercheck's virtual-clock and
// digest-order sets, plus plan (frozen schedules and replay).
var SinkPkgs = map[string]bool{
	"runtime": true, "sched": true, "comm": true, "cholesky": true,
	"solver": true, "cg": true, "obs": true, "plan": true,
}

// FactsKey memoizes the nondeterminism summary; contractcheck shares it.
const FactsKey = "nondet"

// Facts computes (or returns) the program's nondeterminism summary: for
// each function, the earliest reason it is not reproducible, or nil.
func Facts(prog *analysis.Program) map[*analysis.Func]*analysis.Taint {
	return prog.Flow(analysis.FlowSpec{
		Key: FactsKey,
		Direct: func(fn *analysis.Func) *analysis.Taint {
			return directSource(prog, fn)
		},
		Extern: func(fn *analysis.Func, e analysis.ExternEdge) *analysis.Taint {
			return externSource(prog, fn, e)
		},
	})
}

func prepare(prog *analysis.Program) { Facts(prog) }

// directSource finds the function's first in-body source: an escaping map
// range. (Clock and rand calls resolve through the call graph's extern
// edges, not here.)
func directSource(prog *analysis.Program, fn *analysis.Func) *analysis.Taint {
	var taint *analysis.Taint
	analysis.InspectOwn(fn, func(n ast.Node) bool {
		if taint != nil {
			return false
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if !analysis.MapRangeEscapes(fn.Pkg.Info, fn.Body(), rng) {
			return true
		}
		if prog.SuppressedAt(fn.Pkg.Fset, rng.Pos(), "detercheck", Name) {
			return true
		}
		taint = &analysis.Taint{What: "map iteration order", Pos: rng.Pos(), CallPos: rng.Pos()}
		return false
	})
	return taint
}

// externSource models body-less callees: the wall clock and the global
// rand source taint, everything else in the standard library is clean.
func externSource(prog *analysis.Program, fn *analysis.Func, e analysis.ExternEdge) *analysis.Taint {
	if filepath.Base(fn.Pkg.Fset.Position(e.Pos).Filename) == "faults.go" {
		return nil // the injector owns the repo's one seeded source
	}
	var what string
	switch e.PkgPath {
	case "time":
		if e.Name == "Now" {
			what = "time.Now()"
		}
	case "math/rand", "math/rand/v2":
		// Constructors (rand.New, rand.NewSource, rand.NewPCG, ...) build
		// seeded sources and are fine; package-level draws use the global
		// source. Methods on a seeded *rand.Rand (Recv != "") are fine too.
		if e.Recv == "" && !strings.HasPrefix(e.Name, "New") {
			what = e.PkgPath + "." + e.Name + " (global source)"
		}
	}
	if what == "" {
		return nil
	}
	if prog.SuppressedAt(fn.Pkg.Fset, e.Pos, "detercheck", Name) {
		return nil
	}
	return &analysis.Taint{What: what, Pos: e.Pos, CallPos: e.Pos}
}

// run reports, for each function of a sink package, every call or
// reference that reaches a tainted function outside the sink set.
func run(pass *analysis.Pass) {
	if !SinkPkgs[analysis.PkgBase(pass)] {
		return
	}
	facts := Facts(pass.Prog)
	pkgPath := pass.Pkg.Path()
	seen := make(map[token.Pos]bool)
	for _, fn := range pass.Prog.Funcs() {
		if fn.Pkg.Path != pkgPath {
			continue
		}
		for _, e := range fn.Edges {
			if seen[e.Pos] {
				continue
			}
			callee := e.Callee
			if SinkPkgs[filepath.Base(callee.Pkg.Path)] {
				continue // reported inside the sink set, closer to the root
			}
			t := facts[callee]
			if t == nil {
				continue
			}
			seen[e.Pos] = true
			verb := "call to"
			if e.Kind == analysis.EdgeRef {
				verb = "reference to"
			}
			pass.Reportf(e.Pos, "%s %s carries nondeterminism into deterministic package %s (%s → %s) — hoist the source behind a seeded/sorted boundary or suppress the root with //geompc:nolint",
				verb, callee.Name, analysis.PkgBase(pass), callee.Name, chainFrom(pass.Prog, callee, facts))
		}
	}
}

// chainFrom renders callee's own chain down to the root site.
func chainFrom(prog *analysis.Program, callee *analysis.Func, facts map[*analysis.Func]*analysis.Taint) string {
	return prog.Chain(callee, facts)
}
