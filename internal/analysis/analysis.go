// Package analysis is a self-contained static-analysis framework in the
// shape of golang.org/x/tools/go/analysis, built only on the standard
// library's go/ast, go/parser and go/types (the x/tools module is not
// vendored here, and the toolchain image is offline). It exists to make the
// repo's two load-bearing conventions machine-checked instead of
// convention-checked:
//
//   - Determinism: golden FNV-1a schedule/kernel digests and lineage replay
//     demand that nothing feeding a digest, schedule, trace or metrics
//     snapshot depends on map iteration order or wall-clock time.
//   - Precision safety: the Higham–Mary rule (‖A_ij‖·NT/‖A‖ ≤ u_req/u_low)
//     is the only place precision may be lowered, so every lossy numeric
//     down-cast must route through the audited conversion API in
//     internal/fp16 / internal/prec (the software analogue of the paper's
//     STC/TTC conversion points).
//
// The concrete analyzers live in subpackages (detercheck, preccast,
// lockcheck, hotalloc); cmd/geompclint is the multichecker binary that runs
// them all. Diagnostics can be suppressed per line with a mandatory-reason
// directive:
//
//	//geompc:nolint <analyzer> <reason>
//
// and allocation-sensitive functions opt into hotalloc with a doc-comment
// directive:
//
//	//geompc:hot
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one static check. Mirrors x/tools' analysis.Analyzer closely
// enough that these could be ported to the real framework verbatim if the
// dependency ever becomes available.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //geompc:nolint directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Prepare, when set, runs once per driver invocation before any Run,
	// with the whole program in hand. Interprocedural analyzers compute
	// their call-graph summaries here (serially, so summary-level
	// suppression marking needs no locking); Run then only reports.
	Prepare func(*Program)
	// Run inspects one package and reports diagnostics through the pass.
	Run func(*Pass)
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Prog is the whole-program view (call graph, summaries). Always set
	// by the driver; intraprocedural analyzers ignore it.
	Prog *Program

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// sortDiagnostics orders diagnostics by (file, line, column, analyzer,
// message) so output is stable regardless of analyzer scheduling.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// NewInfo returns a types.Info with every map the analyzers consult
// allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
