// Fixture solver package for contractcheck: declares the Backend interface
// the contract binds. Base name "solver" is what the analyzer keys on.
package solver

// Config configures a solve.
type Config struct {
	N int
}

// Result is a solve outcome.
type Result struct {
	Digest uint64
}

// Backend is the pluggable solver contract: Solve and SolveCached must be
// transitively deterministic (DESIGN.md §6i).
type Backend interface {
	Name() string
	Solve(cfg Config) (*Result, error)
	SolveCached(cfg Config) (*Result, error)
}
