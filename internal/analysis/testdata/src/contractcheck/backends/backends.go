// Fixture backends for contractcheck: one deterministic implementation,
// one that sneaks the wall clock into Solve (flagged at the method), and a
// lookalike that does not implement Backend (exempt — the contract binds
// implementations only).
package backends

import (
	"time"

	solver "geompc/internal/solver"
)

// Good is a deterministic backend: clean.
type Good struct{}

func (Good) Name() string { return "good" }

func (Good) Solve(cfg solver.Config) (*solver.Result, error) {
	return &solver.Result{Digest: uint64(cfg.N)}, nil
}

func (Good) SolveCached(cfg solver.Config) (*solver.Result, error) {
	return &solver.Result{Digest: uint64(cfg.N)}, nil
}

// Bad seeds its digest from the wall clock: Solve violates §6i.
type Bad struct{}

func (Bad) Name() string { return "bad" }

func (Bad) Solve(cfg solver.Config) (*solver.Result, error) { // want `contractcheck: solver backend Bad: Solve is not deterministic`
	return &solver.Result{Digest: uint64(time.Now().UnixNano())}, nil
}

func (Bad) SolveCached(cfg solver.Config) (*solver.Result, error) {
	return &solver.Result{Digest: uint64(cfg.N)}, nil
}

// Lookalike has the nondeterministic method shapes but no Name(): it does
// not satisfy Backend, so the contract does not bind it.
type Lookalike struct{}

func (Lookalike) Solve(cfg solver.Config) (*solver.Result, error) {
	return &solver.Result{Digest: uint64(time.Now().UnixNano())}, nil
}
