// Fixture for detercheck, loaded as geompc/internal/geo — not a
// virtual-clock package, so neither rule applies.
package geo

import "time"

func anything(m map[string]float64) (float64, int64) {
	s := 0.0
	for _, v := range m {
		s += v
	}
	return s, time.Now().Unix()
}
