package runtime

import "math/rand"

// faults.go is the one non-test file in a virtual-clock package allowed to
// touch math/rand conveniences: the fault injector owns the repo's seeded
// source, and its helpers are allowlisted by file name.
func faultJitter() int {
	return rand.Intn(8)
}
