// Fixture for detercheck, loaded as geompc/internal/runtime — a
// virtual-clock package where both the clock rule and the map-order rule
// apply.
package runtime

import (
	"math/rand"
	"sort"
	"time"
)

type table struct {
	weights map[string]float64
	counts  map[string]int
	marks   map[int]bool
}

// sortedKeys collects and sorts: the map order never escapes.
func (t *table) sortedKeys() []string {
	var keys []string
	for k := range t.weights {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// leakedKeys returns keys in map order.
func (t *table) leakedKeys() []string {
	var keys []string
	for k := range t.weights { // want `range over map t\.weights`
		keys = append(keys, k)
	}
	return keys
}

// commutative bodies are exempt: integer counters, map writes, deletes.
func (t *table) fold() int {
	n := 0
	for k, c := range t.counts {
		n += c
		t.marks[len(k)] = true
	}
	for k := range t.marks {
		delete(t.marks, k)
	}
	return n
}

// floatSum accumulates floats, which does not commute bit-exactly.
func (t *table) floatSum() float64 {
	s := 0.0
	for _, w := range t.weights { // want `range over map t\.weights`
		s += w
	}
	return s
}

// suppressed demonstrates a well-formed //geompc:nolint.
func (t *table) suppressed() float64 {
	s := 0.0
	for _, w := range t.weights { //geompc:nolint detercheck commutative enough for a fixture
		s += w
	}
	return s
}

// wallClock draws from the wall clock and the global rand source.
func wallClock() (int64, int) {
	now := time.Now().UnixNano() // want `time\.Now in a virtual-clock package`
	n := rand.Intn(4)            // want `math/rand\.Intn uses the global rand source`
	return now, n
}

// seeded construction is the allowed way to get randomness here.
func seeded() *rand.Rand {
	return rand.New(rand.NewSource(42))
}
