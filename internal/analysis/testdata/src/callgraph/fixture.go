// Fixture for the whole-program call graph: every resolution shape the
// interprocedural analyzers depend on, in one package. The tests in
// program_test.go assert the edges directly rather than through // want
// annotations — the graph, not a diagnostic, is the contract here.
package fixture

// Runner is implemented by two concrete types; calls through the interface
// must resolve to both implementations (class-hierarchy analysis).
type Runner interface {
	Run(n int) int
}

type fast struct{}

func (fast) Run(n int) int { return n }

type slow struct{ bias int }

func (s *slow) Run(n int) int { return n + s.bias }

// Dispatch calls through the interface: edges to fast.Run AND slow.Run.
func Dispatch(r Runner) int { return r.Run(1) }

// Closures: a named literal, an immediately-invoked one, and a nested one.
func Closures() int {
	add := func(a, b int) int { return a + b } // node Closures$0
	v := func() int {                          // node Closures$1
		inner := func() int { return 1 } // node Closures$1$0
		return inner()
	}()
	return add(v, 2)
}

// MethodValue binds a method: a ref edge to slow.Run, not a call edge.
func MethodValue(s *slow) func(int) int {
	f := s.Run
	return f
}

// Mutual recursion: Even and Odd must land in one SCC.
func Even(n int) bool {
	if n == 0 {
		return true
	}
	return Odd(n - 1)
}

func Odd(n int) bool {
	if n == 0 {
		return false
	}
	return Even(n - 1)
}

// Top calls into the SCC from outside: its component must come later in
// bottom-up order.
func Top(n int) bool { return Even(n) }
