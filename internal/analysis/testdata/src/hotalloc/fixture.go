// Fixture for hotalloc: only functions marked //geompc:hot are checked.
package fixture

type task struct {
	id   int
	deps []int
}

type pool struct {
	free  []*task
	items []task
	index map[int]*task
}

// get pops from the freelist on the fast path.
//
//geompc:hot
func (p *pool) get() *task {
	if n := len(p.free); n > 0 {
		t := p.free[n-1]
		p.free = p.free[:n-1]
		return t
	}
	return &task{} // want `&.*task{} allocates in //geompc:hot get`
}

// put returns a task to the freelist; the self-append is the amortized
// idiom and stays unflagged.
//
//geompc:hot
func (p *pool) put(t *task) {
	p.free = append(p.free, t)
}

// regressions collects every allocation shape hotalloc guards against.
//
//geompc:hot
func (p *pool) regressions(ids []int) []int {
	buf := make([]int, 0, len(ids)) // want `make allocates in //geompc:hot regressions`
	buf = append(buf, ids...)
	out := append([]int{}, buf...)  // want `slice literal allocates` `append to a different destination`
	m := map[int]bool{}             // want `map literal allocates`
	t := new(task)                  // want `new allocates in //geompc:hot regressions`
	f := func() int { return t.id } // want `func literal in //geompc:hot regressions`
	_ = m
	_ = f
	// A plain struct value is a stack value, not an allocation.
	p.items = append(p.items, task{id: 1})
	return out
}

// preallocated demonstrates the suppression escape hatch for a deliberate
// cold-path allocation inside a hot function.
//
//geompc:hot
func (p *pool) preallocated(n int) {
	p.index = make(map[int]*task, n) //geompc:nolint hotalloc one-time growth on the first call only
}

// cold is not marked hot: nothing is flagged.
func (p *pool) cold() []*task {
	return append([]*task{}, p.free...)
}

// grow is a cold helper that allocates; it is flagged only at hot call
// sites (transitive allocation-freedom), never in its own body.
func (p *pool) grow() {
	p.items = append(p.items, make([]task, 16)...)
}

// transitive exercises the interprocedural layer: calls into allocating
// helpers are flagged with the chain down to the root site, calls to other
// //geompc:hot functions are exempt (the callee polices itself), and the
// compaction self-append is the allowed reuse idiom.
//
//geompc:hot
func (p *pool) transitive(t *task) {
	p.grow() // want `call to runtime.\(pool\).grow allocates \(make at fixture.go:\d+\)`
	p.put(t) // hot callee polices itself: clean
	// Compaction into the same backing array: allowed reuse idiom.
	p.free = append(p.free[:0], p.free[1:]...)
}

// bindings exercises method-value detection: binding allocates the bound
// closure, calling through a selector does not.
//
//geompc:hot
func (p *pool) bindings() func() {
	p.cold()      // want `call to runtime.\(pool\).cold allocates \(growing append at fixture.go:\d+\)`
	return p.grow // want `method value p.grow allocates its bound closure`
}
