// Fixture helper package for precflow: unaudited code with a lossy
// lowering buried one call deep. preccast flags the cast itself (not run
// here); precflow flags every call chain that reaches it.
package geo

import (
	fp16 "geompc/internal/fp16"
)

// Lower is the unaudited root: a silent float64→float32.
func Lower(x float64) float32 { return float32(x) }

// Via reaches the root through one frame: flagged at its own call edge.
func Via(x float64) float32 {
	return Lower(x) // want `precflow: call to geo.Lower reaches an unaudited float64→float32 conversion`
}

// Sanctioned routes through the audited API: the crossing edge sanitizes,
// no taint, no findings at callers.
func Sanctioned(x float64) float32 { return fp16.Quantize(x) }

// AuditedLower carries a reasoned suppression at the root: audited, clean.
func AuditedLower(x float64) float32 {
	return float32(x) //geompc:nolint precflow fixture: validated against the FP64 oracle in tests
}
