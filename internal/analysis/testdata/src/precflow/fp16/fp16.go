// Fixture audited package for precflow: base name "fp16", the sanctioned
// conversion API. Lowerings here are the implementation, and edges crossing
// into this package sanitize the caller.
package fp16

// Quantize is the sanctioned lowering entry point.
func Quantize(x float64) float32 { return float32(x) }
