// Fixture consumer package for precflow: calls into ../geo and must be
// flagged exactly where a chain reaches the unaudited lowering.
package consumer

import (
	geo "geompc/internal/geo"
)

// UseVia reaches Lower through Via: the finding's chain names both hops.
func UseVia(x float64) float32 {
	return geo.Via(x) // want `precflow: call to geo.Via reaches an unaudited float64→float32 conversion \(geo.Lower:`
}

// UseSanctioned goes through the audited API: clean.
func UseSanctioned(x float64) float32 { return geo.Sanctioned(x) }

// UseAudited calls the suppressed root: clean.
func UseAudited(x float64) float32 { return geo.AuditedLower(x) }

// Handle stores the tainted function as a value: the reference leaks the
// lowering just as a call would.
func Handle() func(float64) float32 {
	return geo.Via // want `precflow: reference to geo.Via reaches an unaudited float64→float32 conversion`
}
