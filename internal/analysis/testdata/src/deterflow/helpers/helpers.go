// Fixture helpers for deterflow: a utility package OUTSIDE the
// deterministic set. Nothing is reported here — deterflow findings appear
// at the sink-package edges that call in (see ../sink). detercheck cannot
// see these either: its package scoping skips "core" entirely, which is
// exactly the gap deterflow closes.
package helpers

import (
	"math/rand"
	"sort"
	"time"
)

// WallClock reads the real clock: tainted.
func WallClock() float64 { return float64(time.Now().UnixNano()) }

// Indirect launders WallClock through one more frame: still tainted, and
// the chain in the finding must name both hops.
func Indirect() float64 { return WallClock() }

// Draw uses the process-global rand source: tainted.
func Draw() int { return rand.Int() }

// Seeded draws from a caller-owned seeded source: clean.
func Seeded(r *rand.Rand) int { return r.Int() }

// KeysUnsorted leaks map iteration order into a slice: tainted.
func KeysUnsorted(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}

// KeysSorted collects then sorts — the laundering idiom: clean.
func KeysSorted(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Audited reads the clock under a reasoned suppression: the root is
// audited, so callers stay clean.
func Audited() float64 {
	return float64(time.Now().UnixNano()) //geompc:nolint deterflow fixture: audited wall-clock read for cache warmup only
}
