// Fixture sink for deterflow: a package in the deterministic set (base
// name "sched") calling into ../helpers. Every edge that reaches a
// nondeterminism source is flagged here, at the boundary; edges to clean
// or audited helpers are not.
package sink

import (
	core "geompc/internal/core"
)

// Schedule consumes helper results in a digest-relevant order.
func Schedule(m map[int]int) float64 {
	t := core.WallClock()        // want `deterflow: call to core.WallClock carries nondeterminism`
	t += core.Indirect()         // want `deterflow: call to core.Indirect carries nondeterminism.*core.Indirect → core.WallClock`
	t += float64(core.Draw())    // want `deterflow: call to core.Draw carries nondeterminism`
	keys := core.KeysUnsorted(m) // want `deterflow: call to core.KeysUnsorted carries nondeterminism.*map iteration order`
	for _, k := range keys {
		t += float64(k)
	}
	return t
}

// CleanSchedule uses only the clean helpers: nothing is flagged.
func CleanSchedule(m map[int]int) float64 {
	t := core.Audited()
	for _, k := range core.KeysSorted(m) {
		t += float64(k)
	}
	return t
}

// Callback stores a tainted function value: the reference itself is the
// leak — the engine may invoke it later.
func Callback() func() float64 {
	return core.WallClock // want `deterflow: reference to core.WallClock carries nondeterminism`
}
