// Fixture for lockcheck (the analyzer is global, so the import path does
// not matter).
package fixture

import (
	"fmt"
	"sync"
)

type counter struct {
	mu sync.Mutex
	n  int
}

type reader struct {
	mu sync.RWMutex
	v  float64
}

// bracketed pairs are fine: deferred, or straight-line in the same block.
func (c *counter) inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *counter) set(n int) {
	c.mu.Lock()
	c.n = n
	c.mu.Unlock()
}

func (r *reader) get() float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.v
}

// branchUnlock releases only on one path: flagged.
func (c *counter) branchUnlock(ok bool) {
	c.mu.Lock() // want `c\.mu\.Lock has no deferred or same-block Unlock`
	if ok {
		c.n++
		c.mu.Unlock()
	}
}

// neverUnlocked has no release at all: flagged.
func (c *counter) neverUnlocked() {
	c.mu.Lock() // want `c\.mu\.Lock has no deferred or same-block Unlock`
	c.n++
}

// mismatched releases the write lock for a read lock: flagged.
func (r *reader) mismatched() float64 {
	r.mu.RLock() // want `r\.mu\.RLock has no deferred or same-block RUnlock`
	defer r.mu.Unlock()
	return r.v
}

// suppressed hands the lock to a caller on purpose.
func (c *counter) acquire() {
	c.mu.Lock() //geompc:nolint lockcheck handed to the caller, released in release()
}

func (c *counter) release() {
	c.mu.Unlock()
}

// boxed copies the mutex into fmt's variadic interface parameter: flagged.
// Passing the pointer is fine.
func (c *counter) boxed() {
	fmt.Println(*c) // want `passing \*c by value copies its mutex`
	fmt.Println(c)
}
