// Fixture for preccast, loaded as geompc/internal/fp16 — the audited
// conversion API itself, where the down-casts and bit-twiddling are the
// whole point.
package fp16

import "math"

func round(x float64, f float32) (float32, uint16, uint32) {
	a := float32(x)
	b := uint16(math.Float32bits(f) >> 16)
	c := math.Float32bits(f) &^ 0x1fff
	return a, b, c
}
