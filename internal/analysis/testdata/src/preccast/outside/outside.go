// Fixture for preccast, loaded as geompc/internal/mle — outside the audited
// conversion packages, so every lossy down-cast is flagged.
package mle

import "math"

func downcast(x float64, f float32) (float32, uint16, uint32) {
	a := float32(x)                    // want `lossy float64→float32 conversion`
	b := uint16(f)                     // want `float→uint16 conversion outside internal/fp16`
	c := math.Float32bits(f) >> 16     // want `literal half-precision bit-twiddling`
	d := math.Float32bits(f) &^ 0x1fff // want `literal half-precision bit-twiddling`
	_ = d
	return a, b, c
}

// Exact or widening conversions are fine, as are constants.
func fine(f float32, n int) (float64, float32, float32, uint16) {
	w := float64(f)
	k := float32(1.5)
	g := float32(f)
	u := uint16(n)
	return w, k, g, u
}

// suppressed demonstrates routing around the check with a reason.
func suppressed(x float64) float32 {
	return float32(x) //geompc:nolint preccast fixture exercises the suppression path
}
