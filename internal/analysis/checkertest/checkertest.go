// Package checkertest runs analyzers over fixture packages and compares the
// diagnostics against `// want` annotations — the same contract as
// golang.org/x/tools/go/analysis/analysistest, rebuilt on the in-repo
// framework. A fixture line asserts its diagnostics with one or more quoted
// regular expressions:
//
//	for k := range m { // want `range over map`
//
// Every diagnostic must be matched by a want on its line, and every want
// must match a diagnostic; either mismatch fails the test. Fixtures live
// under internal/analysis/testdata and declare their package path
// explicitly, because analyzers scope themselves by import path.
package checkertest

import (
	"fmt"
	"go/ast"
	"regexp"
	"strings"
	"testing"

	"geompc/internal/analysis"
)

// want is one expected-diagnostic annotation.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run type-checks the fixture directory as importPath, applies the
// analyzers through the driver (so //geompc:nolint handling is part of what
// fixtures exercise), and asserts the want annotations.
func Run(t *testing.T, dir, importPath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	pkg, err := analysis.LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags := analysis.Run([]*analysis.Package{pkg}, analyzers)

	wants, err := parseWants(pkg)
	if err != nil {
		t.Fatal(err)
	}

	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: want %q matched no diagnostic", w.file, w.line, w.re)
		}
	}
}

// RunDirs type-checks several fixture directories as one mini-program (in
// order, so later fixtures may import earlier ones by their claimed import
// path), runs the analyzers over every package through the driver, and
// asserts the want annotations across all of them. This is how the
// interprocedural fixtures model cross-package call chains: a taint rooted
// in one fixture package surfaces as a finding in another.
func RunDirs(t *testing.T, specs []analysis.DirSpec, analyzers ...*analysis.Analyzer) {
	t.Helper()
	pkgs, err := analysis.LoadDirs(specs...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	diags := analysis.Run(pkgs, analyzers)

	var wants []*want
	for _, pkg := range pkgs {
		ws, err := parseWants(pkg)
		if err != nil {
			t.Fatal(err)
		}
		wants = append(wants, ws...)
	}
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: want %q matched no diagnostic", w.file, w.line, w.re)
		}
	}
}

// claim marks the first unhit want matching d and reports success.
func claim(wants []*want, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if w.hit || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(d.Analyzer + ": " + d.Message) {
			w.hit = true
			return true
		}
	}
	return false
}

// wantMarker introduces expectations inside a comment; each following
// quoted string (back-quoted or double-quoted) is one expected-diagnostic
// regexp.
const wantMarker = "// want "

var wantArg = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// parseWants extracts want annotations from every fixture file.
func parseWants(pkg *analysis.Package) ([]*want, error) {
	var out []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				ws, err := parseWantComment(pkg, c)
				if err != nil {
					return nil, err
				}
				out = append(out, ws...)
			}
		}
	}
	return out, nil
}

func parseWantComment(pkg *analysis.Package, c *ast.Comment) ([]*want, error) {
	idx := strings.Index(c.Text, wantMarker)
	if idx < 0 {
		return nil, nil
	}
	pos := pkg.Fset.Position(c.Pos())
	args := c.Text[idx+len(wantMarker):]
	matches := wantArg.FindAllString(args, -1)
	if len(matches) == 0 {
		return nil, fmt.Errorf("%s:%d: want comment with no quoted pattern", pos.Filename, pos.Line)
	}
	var out []*want
	for _, m := range matches {
		pat := m[1 : len(m)-1] // strip quotes; escapes inside "" are left to the regexp
		re, err := regexp.Compile(pat)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, m, err)
		}
		out = append(out, &want{file: pos.Filename, line: pos.Line, re: re})
	}
	return out, nil
}
