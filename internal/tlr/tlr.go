// Package tlr implements tile low-rank (TLR) compression, the future-work
// direction the paper names in §VIII ("combining the strengths of mixed
// precisions with tile low-rank computations"): off-diagonal covariance
// tiles are numerically low-rank, so storing them as U·Vᵀ with a relative
// tolerance multiplies the savings of reduced-precision storage.
//
// Compression uses Adaptive Cross Approximation with partial pivoting — the
// standard algebraic compressor for covariance blocks (used by HiCMA/
// ExaGeoStat-TLR) — which touches only O(r·(m+n)) of the tile's entries per
// accepted rank.
package tlr

import (
	"math"
)

// LowRank is a rank-r factorization A ≈ U·Vᵀ. U holds r slabs of length M
// (U[k*M+i] = U_k(i)) and V holds r slabs of length N (V[k*N+j] = V_k(j)).
type LowRank struct {
	M, N, Rank int
	U, V       []float64
}

// Bytes returns the storage footprint of the factors at elemBytes per
// element (8 for FP64, 4 for FP32, 2 for FP16 storage).
func (lr *LowRank) Bytes(elemBytes int) int64 {
	return int64(lr.Rank) * int64(lr.M+lr.N) * int64(elemBytes)
}

// Dense reconstructs the approximation into a fresh m×n row-major slice.
func (lr *LowRank) Dense() []float64 {
	out := make([]float64, lr.M*lr.N)
	for k := 0; k < lr.Rank; k++ {
		uk := lr.U[k*lr.M : (k+1)*lr.M]
		vk := lr.V[k*lr.N : (k+1)*lr.N]
		for i := 0; i < lr.M; i++ {
			row := out[i*lr.N : (i+1)*lr.N]
			ui := uk[i]
			for j := 0; j < lr.N; j++ {
				row[j] += ui * vk[j]
			}
		}
	}
	return out
}

// Compress approximates the dense m×n tile a (row-major, stride n) to
// relative Frobenius tolerance tol using partially pivoted ACA. maxRank
// bounds the accepted rank (0 means min(m,n)). The returned approximation
// satisfies ‖A − UVᵀ‖_F ≲ tol·‖A‖_F for the numerically low-rank blocks of
// smooth covariance kernels.
func Compress(a []float64, m, n int, tol float64, maxRank int) *LowRank {
	if maxRank <= 0 || maxRank > min(m, n) {
		maxRank = min(m, n)
	}
	lr := &LowRank{M: m, N: n}
	rowUsed := make([]bool, m)
	colUsed := make([]bool, n)

	// Residual entry r_ij = a_ij − Σ_k u_k(i)·v_k(j), computed on demand.
	resid := func(i, j int) float64 {
		v := a[i*n+j]
		for k := 0; k < lr.Rank; k++ {
			v -= lr.U[k*m+i] * lr.V[k*n+j]
		}
		return v
	}

	var approxNorm2 float64 // running estimate of ‖UVᵀ‖_F²
	i := 0
	for lr.Rank < maxRank {
		// Row i of the residual.
		rowUsed[i] = true
		rowBuf := make([]float64, n)
		jStar, maxAbs := -1, 0.0
		for j := 0; j < n; j++ {
			rowBuf[j] = resid(i, j)
			if !colUsed[j] && math.Abs(rowBuf[j]) > maxAbs {
				maxAbs = math.Abs(rowBuf[j])
				jStar = j
			}
		}
		if jStar < 0 || maxAbs == 0 {
			// Row exhausted; try the next unused row.
			if next := nextUnused(rowUsed); next >= 0 {
				i = next
				continue
			}
			break
		}
		delta := rowBuf[jStar]
		colUsed[jStar] = true

		// u_k = residual column jStar; v_k = residual row i / delta.
		uk := make([]float64, m)
		var un, vn float64
		bestAbs, bestI := 0.0, -1
		for r := 0; r < m; r++ {
			uk[r] = resid(r, jStar)
			un += uk[r] * uk[r]
			if !rowUsed[r] && math.Abs(uk[r]) > bestAbs {
				bestAbs = math.Abs(uk[r])
				bestI = r
			}
		}
		vk := make([]float64, n)
		for c := 0; c < n; c++ {
			vk[c] = rowBuf[c] / delta
			vn += vk[c] * vk[c]
		}

		lr.U = append(lr.U, uk...)
		lr.V = append(lr.V, vk...)
		lr.Rank++

		// Convergence: the new term's norm against the running approximation
		// norm (Bebendorf's standard stopping rule).
		term := math.Sqrt(un) * math.Sqrt(vn)
		approxNorm2 += un * vn
		for k := 0; k < lr.Rank-1; k++ {
			var uu, vv float64
			for r := 0; r < m; r++ {
				uu += lr.U[k*m+r] * uk[r]
			}
			for c := 0; c < n; c++ {
				vv += lr.V[k*n+c] * vk[c]
			}
			approxNorm2 += 2 * uu * vv
		}
		if approxNorm2 > 0 && term <= tol*math.Sqrt(approxNorm2) {
			break
		}
		if bestI < 0 {
			if next := nextUnused(rowUsed); next >= 0 {
				i = next
				continue
			}
			break
		}
		i = bestI
	}
	return lr
}

func nextUnused(used []bool) int {
	for i, u := range used {
		if !u {
			return i
		}
	}
	return -1
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// RelError returns ‖A − UVᵀ‖_F / ‖A‖_F against the dense original.
func (lr *LowRank) RelError(a []float64) float64 {
	d := lr.Dense()
	var num, den float64
	for i := range a {
		e := a[i] - d[i]
		num += e * e
		den += a[i] * a[i]
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}
