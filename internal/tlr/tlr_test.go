package tlr

import (
	"testing"

	"geompc/internal/geo"
	"geompc/internal/stats"
)

// exactLowRankTile builds a tile of exact rank r.
func exactLowRankTile(m, n, r int, rng *stats.RNG) []float64 {
	u := make([]float64, m*r)
	v := make([]float64, n*r)
	for i := range u {
		u[i] = rng.Norm()
	}
	for i := range v {
		v[i] = rng.Norm()
	}
	a := make([]float64, m*n)
	for k := 0; k < r; k++ {
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				a[i*n+j] += u[i*r+k] * v[j*r+k]
			}
		}
	}
	return a
}

func TestCompressExactRank(t *testing.T) {
	rng := stats.NewRNG(1, 0)
	for _, r := range []int{1, 2, 5} {
		a := exactLowRankTile(24, 20, r, rng)
		lr := Compress(a, 24, 20, 1e-12, 0)
		if lr.Rank > r+1 {
			t.Errorf("exact rank-%d tile compressed to rank %d", r, lr.Rank)
		}
		if e := lr.RelError(a); e > 1e-10 {
			t.Errorf("rank-%d reconstruction error %g", r, e)
		}
	}
}

func TestCompressToleranceHonored(t *testing.T) {
	// Covariance tile between two well-separated clusters: numerically
	// low-rank under a smooth kernel.
	rng := stats.NewRNG(2, 0)
	locs := geo.GenerateLocations(256, 2, rng)
	k := geo.SqExp{Dimension: 2}
	theta := []float64{1, 0.5}
	m, n := 64, 64
	a := make([]float64, m*n)
	geo.CovTile(locs, 0, 192, m, n, k, theta, 0, a, n)
	for _, tol := range []float64{1e-2, 1e-4, 1e-8} {
		lr := Compress(a, m, n, tol, 0)
		if e := lr.RelError(a); e > 20*tol {
			t.Errorf("tol=%g: error %g (rank %d)", tol, e, lr.Rank)
		}
		if lr.Rank >= m {
			t.Errorf("tol=%g: no compression achieved (rank %d)", tol, lr.Rank)
		}
	}
}

func TestRankGrowsWithTightTolerance(t *testing.T) {
	rng := stats.NewRNG(3, 0)
	locs := geo.GenerateLocations(256, 2, rng)
	k := geo.Matern{Dimension: 2}
	theta := []float64{1, 0.3, 0.5}
	m, n := 64, 64
	a := make([]float64, m*n)
	geo.CovTile(locs, 0, 192, m, n, k, theta, 0, a, n)
	loose := Compress(a, m, n, 1e-2, 0)
	tight := Compress(a, m, n, 1e-9, 0)
	if !(tight.Rank >= loose.Rank) {
		t.Errorf("tight tolerance rank %d below loose rank %d", tight.Rank, loose.Rank)
	}
	if loose.Bytes(8) >= int64(m*n*8) {
		t.Errorf("loose compression larger than dense (%d bytes)", loose.Bytes(8))
	}
}

func TestCompressZeroTile(t *testing.T) {
	a := make([]float64, 16*16)
	lr := Compress(a, 16, 16, 1e-6, 0)
	if lr.Rank != 0 {
		t.Errorf("zero tile got rank %d", lr.Rank)
	}
	if e := lr.RelError(a); e != 0 {
		t.Errorf("zero tile error %g", e)
	}
}

func TestCompressFullRankFallsBack(t *testing.T) {
	// A random (full-rank) tile must still reconstruct when allowed full
	// rank.
	rng := stats.NewRNG(4, 0)
	m := 12
	a := make([]float64, m*m)
	for i := range a {
		a[i] = rng.Norm()
	}
	lr := Compress(a, m, m, 1e-14, 0)
	if e := lr.RelError(a); e > 1e-9 {
		t.Errorf("full-rank reconstruction error %g (rank %d)", e, lr.Rank)
	}
}

func TestMaxRankBound(t *testing.T) {
	rng := stats.NewRNG(5, 0)
	m := 20
	a := make([]float64, m*m)
	for i := range a {
		a[i] = rng.Norm()
	}
	lr := Compress(a, m, m, 0, 3)
	if lr.Rank > 3 {
		t.Errorf("maxRank=3 produced rank %d", lr.Rank)
	}
}

func TestBytesAccounting(t *testing.T) {
	lr := &LowRank{M: 100, N: 80, Rank: 7}
	if got := lr.Bytes(8); got != 7*180*8 {
		t.Errorf("Bytes = %d", got)
	}
	if got := lr.Bytes(2); got != 7*180*2 {
		t.Errorf("FP16 Bytes = %d", got)
	}
}
