// Command geompc is the end-to-end driver: it generates (or re-generates) a
// synthetic geospatial dataset, fits a Gaussian-process model by maximum
// likelihood using the adaptive mixed-precision Cholesky with automated
// precision conversion, and reports the estimates together with the
// simulated execution cost on the selected GPU machine.
//
// Usage:
//
//	geompc -n 400 -kernel 2D-Matern -ureq 1e-9
//	geompc -n 900 -kernel 2D-sqexp -ureq 1e-4 -machine Guyot -compare
package main

import (
	"flag"
	"fmt"
	"os"

	"geompc/internal/bench"
	"geompc/internal/core"
	"geompc/internal/hw"
)

func main() {
	n := flag.Int("n", 400, "number of spatial locations")
	kernelName := flag.String("kernel", "2D-Matern", "covariance: 2D-sqexp, 2D-Matern, 3D-sqexp")
	ureq := flag.Float64("ureq", 1e-9, "required accuracy u_req (0 = exact FP64)")
	ts := flag.Int("ts", 64, "tile size")
	machine := flag.String("machine", "Summit", "GPU machine: Summit (V100), Guyot (A100), Haxane (H100)")
	gpus := flag.Int("gpus", 1, "GPUs")
	seed := flag.Uint64("seed", 42, "dataset seed")
	compare := flag.Bool("compare", false, "also fit in exact FP64 and report the difference")
	flag.Parse()

	app, ok := bench.AppByName(*kernelName)
	if !ok {
		fmt.Fprintf(os.Stderr, "geompc: unknown kernel %q\n", *kernelName)
		os.Exit(1)
	}
	nd, err := hw.NodeByName(*machine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "geompc:", err)
		os.Exit(1)
	}
	mach := core.Machine{Node: nd, Ranks: 1, GPUs: *gpus}

	fmt.Printf("generating %d %s locations from θ=%v (seed %d)...\n", *n, app.Name, app.Theta, *seed)
	ds, err := core.GenerateDataset(*n, app.Kernel.Dim(), app.Kernel, app.Theta, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "geompc:", err)
		os.Exit(1)
	}

	run := func(u float64) *core.FitReport {
		rep, err := core.Fit(ds, core.Options{UReq: u, TileSize: *ts, Machine: mach})
		if err != nil {
			fmt.Fprintln(os.Stderr, "geompc:", err)
			os.Exit(1)
		}
		return rep
	}

	rep := run(*ureq)
	label := "exact FP64"
	if *ureq > 0 {
		label = fmt.Sprintf("adaptive MP @ u_req=%.0e", *ureq)
	}
	fmt.Printf("\nfit (%s) on %d×%s:\n", label, *gpus, nd.GPU.Name)
	for i, name := range rep.ParamNames {
		fmt.Printf("  %-8s = %.4f  (truth %.4f)\n", name, rep.Theta[i], app.Theta[i])
	}
	fmt.Printf("  -loglik  = %.4f  (converged: %v)\n", rep.NegLogLik, rep.Converged)
	fmt.Printf("simulated cost: %d likelihood evaluations, %.3f s machine time, %.1f J, %.2f Gflops/W, H2D %s\n",
		rep.Evaluations, rep.Time, rep.Energy, rep.GflopsPerW, bench.HumanBytes(rep.BytesH2D))
	if *ts < 512 {
		fmt.Println("note: at toy tile sizes the simulated cost is kernel-launch bound;")
		fmt.Println("      use examples/quickstart or core.ProjectFactorization for")
		fmt.Println("      production-scale (tile 2048) speedup/energy projections")
	}

	if *compare && *ureq > 0 {
		ex := run(0)
		fmt.Printf("\nexact FP64 reference:\n")
		for i, name := range ex.ParamNames {
			fmt.Printf("  %-8s = %.4f  (MP diff %+.2e)\n", name, ex.Theta[i], rep.Theta[i]-ex.Theta[i])
		}
		fmt.Printf("  simulated time %.3f s (MP speedup %.2fx), energy %.1f J (MP saving %.1f%%)\n",
			ex.Time, ex.Time/rep.Time, ex.Energy, 100*(1-rep.Energy/ex.Energy))
	}
}
