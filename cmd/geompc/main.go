// Command geompc is the end-to-end driver: it generates (or re-generates) a
// synthetic geospatial dataset, fits a Gaussian-process model by maximum
// likelihood using the adaptive mixed-precision Cholesky with automated
// precision conversion, and reports the estimates together with the
// simulated execution cost on the selected GPU machine.
//
// Usage:
//
//	geompc -n 400 -kernel 2D-Matern -ureq 1e-9
//	geompc -n 900 -kernel 2D-sqexp -ureq 1e-4 -machine Guyot -compare
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"geompc/internal/bench"
	"geompc/internal/core"
	"geompc/internal/hw"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "geompc:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("geompc", flag.ContinueOnError)
	n := fs.Int("n", 400, "number of spatial locations")
	kernelName := fs.String("kernel", "2D-Matern", "covariance: 2D-sqexp, 2D-Matern, 3D-sqexp")
	ureq := fs.Float64("ureq", 1e-9, "required accuracy u_req (0 = exact FP64)")
	ts := fs.Int("ts", 64, "tile size")
	machine := fs.String("machine", "Summit", "GPU machine: Summit (V100), Guyot (A100), Haxane (H100)")
	gpus := fs.Int("gpus", 1, "GPUs")
	seed := fs.Uint64("seed", 42, "dataset seed")
	compare := fs.Bool("compare", false, "also fit in exact FP64 and report the difference")
	if err := fs.Parse(args); err != nil {
		return err
	}

	app, ok := bench.AppByName(*kernelName)
	if !ok {
		return fmt.Errorf("unknown kernel %q", *kernelName)
	}
	nd, err := hw.NodeByName(*machine)
	if err != nil {
		return err
	}
	mach := core.Machine{Node: nd, Ranks: 1, GPUs: *gpus}

	fmt.Fprintf(out, "generating %d %s locations from θ=%v (seed %d)...\n", *n, app.Name, app.Theta, *seed)
	ds, err := core.GenerateDataset(*n, app.Kernel.Dim(), app.Kernel, app.Theta, *seed)
	if err != nil {
		return err
	}

	fit := func(u float64) (*core.FitReport, error) {
		return core.Fit(ds, core.Options{UReq: u, TileSize: *ts, Machine: mach})
	}

	rep, err := fit(*ureq)
	if err != nil {
		return err
	}
	label := "exact FP64"
	if *ureq > 0 {
		label = fmt.Sprintf("adaptive MP @ u_req=%.0e", *ureq)
	}
	fmt.Fprintf(out, "\nfit (%s) on %d×%s:\n", label, *gpus, nd.GPU.Name)
	for i, name := range rep.ParamNames {
		fmt.Fprintf(out, "  %-8s = %.4f  (truth %.4f)\n", name, rep.Theta[i], app.Theta[i])
	}
	fmt.Fprintf(out, "  -loglik  = %.4f  (converged: %v)\n", rep.NegLogLik, rep.Converged)
	fmt.Fprintf(out, "simulated cost: %d likelihood evaluations, %.3f s machine time, %.1f J, %.2f Gflops/W, H2D %s\n",
		rep.Evaluations, rep.Time, rep.Energy, rep.GflopsPerW, bench.HumanBytes(rep.BytesH2D))
	if *ts < 512 {
		fmt.Fprintln(out, "note: at toy tile sizes the simulated cost is kernel-launch bound;")
		fmt.Fprintln(out, "      use examples/quickstart or core.ProjectFactorization for")
		fmt.Fprintln(out, "      production-scale (tile 2048) speedup/energy projections")
	}

	if *compare && *ureq > 0 {
		ex, err := fit(0)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\nexact FP64 reference:\n")
		for i, name := range ex.ParamNames {
			fmt.Fprintf(out, "  %-8s = %.4f  (MP diff %+.2e)\n", name, ex.Theta[i], rep.Theta[i]-ex.Theta[i])
		}
		fmt.Fprintf(out, "  simulated time %.3f s (MP speedup %.2fx), energy %.1f J (MP saving %.1f%%)\n",
			ex.Time, ex.Time/rep.Time, ex.Energy, 100*(1-rep.Energy/ex.Energy))
	}
	return nil
}
