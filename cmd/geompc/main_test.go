package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "64", "-ts", "32", "-ureq", "1e-4"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"generating 64 2D-Matern locations", "fit (adaptive MP @ u_req=1e-04)", "simulated cost"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunBadKernel(t *testing.T) {
	if err := run([]string{"-kernel", "5D-nope"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown kernel must fail")
	}
}
