package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	var out bytes.Buffer
	args := []string{"-dim", "2", "-replicas", "2", "-n", "48", "-ts", "16",
		"-levels", "0,1e-2", "-case", "2D-sqexp weak", "-maxevals", "4"}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"2D-sqexp weak", "2 replicas of n=48", "exact", "1e-02"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunBadDim(t *testing.T) {
	if err := run([]string{"-dim", "4"}, &bytes.Buffer{}); err == nil {
		t.Fatal("-dim 4 must fail")
	}
}
