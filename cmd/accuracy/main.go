// Command accuracy reproduces the Monte-Carlo parameter-estimation study of
// §VII-B: Fig 5 (2D squared-exponential and Matérn panels with weak/strong
// correlation and rough/smooth fields) and Fig 6 (3D squared-exponential),
// comparing estimates at several mixed-precision accuracy levels against
// exact FP64 computation.
//
// The paper runs 100 replicas of 40,000 locations; the defaults here are
// scaled to laptop budgets (the estimator-consistency shape is visible at
// small n) and can be raised with -replicas/-n.
//
// Usage:
//
//	accuracy -dim 2              # Fig 5
//	accuracy -dim 3              # Fig 6
//	accuracy -dim 2 -replicas 100 -n 1600
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"geompc/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "accuracy:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("accuracy", flag.ContinueOnError)
	dim := fs.Int("dim", 2, "spatial dimension: 2 (Fig 5) or 3 (Fig 6)")
	replicas := fs.Int("replicas", 20, "Monte-Carlo replicas per case (paper: 100)")
	n := fs.Int("n", 400, "locations per replica (paper: 40,000)")
	ts := fs.Int("ts", 64, "tile size")
	levelsFlag := fs.String("levels", "0,1e-9,1e-4,1e-2", "accuracy levels u_req (0 = exact FP64)")
	seed := fs.Uint64("seed", 7, "RNG seed")
	caseFilter := fs.String("case", "", "run only the named case (substring match)")
	maxEvals := fs.Int("maxevals", 0, "cap optimizer evaluations per fit (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var levels []float64
	for _, p := range strings.Split(*levelsFlag, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return fmt.Errorf("bad level %q", p)
		}
		levels = append(levels, v)
	}

	var cases []bench.AccuracyCase
	switch *dim {
	case 2:
		cases = bench.Fig5Cases()
	case 3:
		cases = bench.Fig6Cases()
	default:
		return fmt.Errorf("-dim must be 2 or 3")
	}

	for _, c := range cases {
		if *caseFilter != "" && !strings.Contains(c.Name, *caseFilter) {
			continue
		}
		res, err := bench.AccuracyStudyEvals(c, levels, *replicas, *n, *ts, *seed, *maxEvals)
		if err != nil {
			return fmt.Errorf("%s: %w", c.Name, err)
		}
		t := bench.NewTable(
			fmt.Sprintf("%s (truth %v, %d replicas of n=%d)", c.Name, c.TrueTheta, *replicas, *n),
			"u_req", "param", "truth", "median", "mean", "q1", "q3", "whisk-lo", "whisk-hi", "failed")
		for _, r := range res {
			u := "exact"
			if r.UReq > 0 {
				u = fmt.Sprintf("%.0e", r.UReq)
			}
			s := r.Summary
			t.Add(u, r.Param, r.Truth, s.Median, s.Mean, s.Q1, s.Q3, s.WhiskerLo, s.WhiskerHi, r.Failed)
		}
		t.Write(out)
	}
	return nil
}
