// Command benchjson turns `go test -bench` text output into the committed
// BENCH_kernels.json artifact: one record per benchmark with ns/op, B/op and
// allocs/op, optionally joined against a baseline run (-seed) to report
// before/after speedups and allocation ratios.
//
// Usage:
//
//	go test -bench ... -benchmem | benchjson -seed results/bench_seed.txt > BENCH_kernels.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// measurement is one benchmark result line.
type measurement struct {
	NsOp     float64 `json:"ns_op"`
	BOp      int64   `json:"b_op"`
	AllocsOp int64   `json:"allocs_op"`
	// Gomaxprocs is the -N suffix go test appends to the benchmark name
	// (go test omits it when GOMAXPROCS is 1). Parallel-sweep series are
	// meaningless without it: 126 points/sec at one core and at eight are
	// different results.
	Gomaxprocs int `json:"gomaxprocs"`
}

// record joins the current run with the baseline for one benchmark.
type record struct {
	Name    string       `json:"name"`
	Before  *measurement `json:"before,omitempty"`
	After   measurement  `json:"after"`
	Speedup float64      `json:"speedup,omitempty"`      // before.ns / after.ns
	AllocsX float64      `json:"allocs_ratio,omitempty"` // before.allocs / after.allocs
}

type report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Seed       string   `json:"seed,omitempty"`
	Benchmarks []record `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	seedPath := fs.String("seed", "", "baseline `file` of go test -bench output (the before numbers)")
	allowMissing := fs.Bool("allow-missing", false, "tolerate seed benchmarks absent from the current run instead of failing")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var seed map[string]measurement
	if *seedPath != "" {
		f, err := os.Open(*seedPath)
		if err != nil {
			return err
		}
		seed, _, err = parseBench(f)
		f.Close()
		if err != nil {
			return err
		}
	}

	after, meta, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(after) == 0 {
		return fmt.Errorf("no benchmark lines on stdin")
	}

	// A seed series missing from the current run would silently vanish from
	// the artifact — the series' history would end without a trace. Fail
	// loudly instead (new benchmarks absent from the seed are fine: they
	// start a series).
	var missing []string
	for _, name := range sortedKeys(seed) {
		if _, ok := after[name]; !ok {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 && !*allowMissing {
		return fmt.Errorf("seed benchmark(s) missing from this run: %s (renamed or not run? pass -allow-missing to drop the series deliberately)",
			strings.Join(missing, ", "))
	}

	rep := report{Goos: meta["goos"], Goarch: meta["goarch"], CPU: meta["cpu"], Seed: *seedPath}
	for _, name := range sortedKeys(after) {
		r := record{Name: name, After: after[name]}
		if b, ok := seed[name]; ok {
			before := b
			r.Before = &before
			if r.After.NsOp > 0 {
				r.Speedup = round2(before.NsOp / r.After.NsOp)
			}
			if r.After.AllocsOp > 0 {
				r.AllocsX = round2(float64(before.AllocsOp) / float64(r.After.AllocsOp))
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, r)
	}

	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// parseBench extracts benchmark lines and header metadata (goos/goarch/cpu)
// from go test -bench output. Benchmark names are normalized by stripping
// the trailing -GOMAXPROCS suffix so -cpu settings don't break the join.
func parseBench(r io.Reader) (map[string]measurement, map[string]string, error) {
	out := make(map[string]measurement)
	meta := make(map[string]string)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		for _, key := range []string{"goos", "goarch", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				meta[key] = v
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name, procs := splitCPUSuffix(fields[0])
		var m measurement
		m.Gomaxprocs = procs
		// fields[1] is the iteration count; after that, (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsOp = v
			case "B/op":
				m.BOp = int64(v)
			case "allocs/op":
				m.AllocsOp = int64(v)
			}
		}
		if m.NsOp > 0 {
			out[name] = m
		}
	}
	return out, meta, sc.Err()
}

// splitCPUSuffix drops a trailing -N GOMAXPROCS marker (Benchmark/sub-8)
// and returns its value, defaulting to 1 when absent — go test only prints
// the suffix when GOMAXPROCS differs from 1.
func splitCPUSuffix(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name, 1
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n <= 0 {
		return name, 1
	}
	return name[:i], n
}

func sortedKeys(m map[string]measurement) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func round2(x float64) float64 {
	return float64(int64(x*100+0.5)) / 100
}
