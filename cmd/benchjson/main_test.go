package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

const benchOutput = `goos: linux
goarch: amd64
cpu: test
BenchmarkGemm/fp64-8    100    12345 ns/op    64 B/op    2 allocs/op
BenchmarkGemm/fp16-8    400     3000 ns/op    64 B/op    2 allocs/op
PASS
`

func TestRunSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(benchOutput), &out); err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || len(rep.Benchmarks) != 2 {
		t.Fatalf("unexpected report: %+v", rep)
	}
	if rep.Benchmarks[0].Name != "BenchmarkGemm/fp16" {
		t.Errorf("CPU suffix not stripped / not sorted: %q", rep.Benchmarks[0].Name)
	}
}

// TestGomaxprocsRecorded: each measurement carries the GOMAXPROCS it ran
// with, parsed from the -N name suffix (1 when the suffix is absent). The
// SweepParallel* series are uninterpretable without it.
func TestGomaxprocsRecorded(t *testing.T) {
	in := benchOutput + "BenchmarkSweepSerial  10  500 ns/op  0 B/op  0 allocs/op\n" +
		"BenchmarkSweepW4-4  10  200 ns/op  0 B/op  0 allocs/op\n"
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(in), &out); err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	want := map[string]int{
		"BenchmarkGemm/fp64":   8,
		"BenchmarkGemm/fp16":   8,
		"BenchmarkSweepSerial": 1,
		"BenchmarkSweepW4":     4,
	}
	for _, b := range rep.Benchmarks {
		if got := b.After.Gomaxprocs; got != want[b.Name] {
			t.Errorf("%s: gomaxprocs = %d, want %d", b.Name, got, want[b.Name])
		}
	}
	if len(rep.Benchmarks) != len(want) {
		t.Fatalf("got %d benchmarks, want %d", len(rep.Benchmarks), len(want))
	}
}

func TestRunEmptyInput(t *testing.T) {
	if err := run(nil, strings.NewReader("no benchmarks here\n"), &bytes.Buffer{}); err == nil {
		t.Fatal("empty bench input must fail")
	}
}

// TestSeedSeriesMissingFailsLoudly: a benchmark present in the seed but
// absent from the current run used to vanish silently from the artifact;
// now it is an error unless -allow-missing is passed.
func TestSeedSeriesMissingFailsLoudly(t *testing.T) {
	seed := t.TempDir() + "/seed.txt"
	if err := writeFile(seed, benchOutput+"BenchmarkGone-8  10  999 ns/op  0 B/op  0 allocs/op\n"); err != nil {
		t.Fatal(err)
	}

	err := run([]string{"-seed", seed}, strings.NewReader(benchOutput), &bytes.Buffer{})
	if err == nil {
		t.Fatal("missing seed series must fail")
	}
	if !strings.Contains(err.Error(), "BenchmarkGone") {
		t.Fatalf("error does not name the missing series: %v", err)
	}

	// The override keeps the old drop-the-series behavior, deliberately.
	var out bytes.Buffer
	if err := run([]string{"-seed", seed, "-allow-missing"}, strings.NewReader(benchOutput), &out); err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	for _, b := range rep.Benchmarks {
		if b.Name == "BenchmarkGone" {
			t.Fatal("-allow-missing must drop the series, not resurrect it")
		}
	}
}

// TestNewBenchmarkStartsSeries: benchmarks absent from the seed join the
// artifact without before/speedup fields and without erroring — how new
// series (e.g. PlanAblationMLE*) enter BENCH_kernels.json.
func TestNewBenchmarkStartsSeries(t *testing.T) {
	seed := t.TempDir() + "/seed.txt"
	if err := writeFile(seed, benchOutput); err != nil {
		t.Fatal(err)
	}
	in := benchOutput + "BenchmarkNewSeries-8  10  500 ns/op  0 B/op  0 allocs/op\n"
	var out bytes.Buffer
	if err := run([]string{"-seed", seed}, strings.NewReader(in), &out); err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, b := range rep.Benchmarks {
		if b.Name == "BenchmarkNewSeries" {
			found = true
			if b.Before != nil || b.Speedup != 0 {
				t.Fatalf("new series must have no baseline: %+v", b)
			}
		}
	}
	if !found {
		t.Fatal("new benchmark missing from the report")
	}
}
