package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
cpu: test
BenchmarkGemm/fp64-8    100    12345 ns/op    64 B/op    2 allocs/op
BenchmarkGemm/fp16-8    400     3000 ns/op    64 B/op    2 allocs/op
PASS
`

func TestRunSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(benchOutput), &out); err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || len(rep.Benchmarks) != 2 {
		t.Fatalf("unexpected report: %+v", rep)
	}
	if rep.Benchmarks[0].Name != "BenchmarkGemm/fp16" {
		t.Errorf("CPU suffix not stripped / not sorted: %q", rep.Benchmarks[0].Name)
	}
}

func TestRunEmptyInput(t *testing.T) {
	if err := run(nil, strings.NewReader("no benchmarks here\n"), &bytes.Buffer{}); err == nil {
		t.Fatal("empty bench input must fail")
	}
}
