package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module for the smoke tests. files maps
// relative path → contents.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module smoketest\n\ngo 1.22\n"
	for rel, src := range files {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestRunFlagsSeededViolation: the binary exits nonzero and names the
// violation when a virtual-clock package reads the wall clock and leaks map
// order.
func TestRunFlagsSeededViolation(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"runtime/clock.go": `package runtime

import "time"

func Tick(m map[int]int) (int64, []int) {
	var order []int
	for k := range m {
		order = append(order, k)
	}
	return time.Now().UnixNano(), order
}
`,
	})
	var out bytes.Buffer
	err := run([]string{"-dir", dir, "./..."}, &out)
	if err == nil {
		t.Fatalf("want nonzero exit on seeded violations, got clean run:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "2 issue(s)") {
		t.Errorf("want 2 issues in the error, got %v", err)
	}
	text := out.String()
	for _, want := range []string{
		"detercheck: time.Now in a virtual-clock package",
		"detercheck: range over map m",
		"clock.go:7:2", // the range statement's position
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

// TestRunCleanModule: a module with no violations exits zero and reports
// the package count.
func TestRunCleanModule(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"geo/geo.go": `package geo

func Dist(a, b float64) float64 { return a - b }
`,
	})
	var out bytes.Buffer
	if err := run([]string{"-dir", dir, "./..."}, &out); err != nil {
		t.Fatalf("clean module flagged: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "1 package(s) clean") {
		t.Errorf("missing clean summary:\n%s", out.String())
	}
}

// TestRunList describes the suite, nolint meta-analyzer included.
func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"detercheck", "preccast", "lockcheck", "hotalloc", "nolint"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list missing %s:\n%s", name, out.String())
		}
	}
}

// TestRunBadPattern surfaces go list errors instead of reporting clean.
func TestRunBadPattern(t *testing.T) {
	dir := writeModule(t, map[string]string{})
	if err := run([]string{"-dir", dir, "./nonexistent/"}, &bytes.Buffer{}); err == nil {
		t.Fatal("want an error for a pattern matching nothing")
	}
}
