// Command geompclint is the repo's multichecker: it runs the
// internal/analysis suite — the intraprocedural analyzers detercheck
// (determinism), preccast (precision safety), lockcheck (lock hygiene) and
// hotalloc (allocation-free hot paths, now transitive), plus the
// interprocedural dataflow analyzers deterflow (nondeterminism reaching the
// deterministic packages), precflow (call chains reaching unaudited
// precision lowerings) and contractcheck (solver.Backend determinism,
// DESIGN.md §6i) — over the packages matching the given patterns and exits
// nonzero on any diagnostic, including misused //geompc:nolint directives.
//
// Usage:
//
//	go run ./cmd/geompclint ./...          # lint the whole module
//	go run ./cmd/geompclint -list          # describe the analyzers
//	go run ./cmd/geompclint -json ./...    # machine-readable findings
//	go run ./cmd/geompclint -suppressions ./...  # //geompc:nolint inventory
//	go run ./cmd/geompclint ./internal/runtime/ ./internal/obs/
//
// `make lint` and the CI lint job run the ./... form; a clean exit is part
// of the build contract. The CI job also uploads the -json report as a
// build artifact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"geompc/internal/analysis"
	"geompc/internal/analysis/contractcheck"
	"geompc/internal/analysis/detercheck"
	"geompc/internal/analysis/deterflow"
	"geompc/internal/analysis/hotalloc"
	"geompc/internal/analysis/lockcheck"
	"geompc/internal/analysis/preccast"
	"geompc/internal/analysis/precflow"
)

// analyzers is the registered suite, in reporting-name order.
var analyzers = []*analysis.Analyzer{
	contractcheck.Analyzer,
	detercheck.Analyzer,
	deterflow.Analyzer,
	hotalloc.Analyzer,
	lockcheck.Analyzer,
	preccast.Analyzer,
	precflow.Analyzer,
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "geompclint:", err)
		os.Exit(1)
	}
}

// jsonDiag is the -json rendering of one finding.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonReport is the full -json document: findings plus the suppression
// inventory, so one artifact captures both what fired and what was audited
// away.
type jsonReport struct {
	Packages     int                    `json:"packages"`
	Findings     []jsonDiag             `json:"findings"`
	Suppressions []analysis.Suppression `json:"suppressions"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("geompclint", flag.ContinueOnError)
	fs.SetOutput(out)
	dir := fs.String("dir", ".", "module `directory` to lint from")
	list := fs.Bool("list", false, "list the analyzers and exit")
	asJSON := fs.Bool("json", false, "emit findings and suppressions as JSON (exit status still reflects findings)")
	suppressions := fs.Bool("suppressions", false, "list //geompc:nolint directives with their audit reasons instead of findings")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(out, "%-14s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(out, "%-14s %s\n", analysis.NolintAnalyzerName,
			"reports misused //geompc:nolint directives (unknown analyzer, missing reason, expired)")
		return nil
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	prog, err := analysis.LoadProgram(*dir, patterns...)
	if err != nil {
		return err
	}
	diags := analysis.RunProgram(prog, analyzers)

	if *suppressions {
		return printSuppressions(out, prog, *asJSON)
	}
	if *asJSON {
		report := jsonReport{
			Packages:     len(prog.Roots),
			Findings:     []jsonDiag{},
			Suppressions: prog.Suppressions(),
		}
		if report.Suppressions == nil {
			report.Suppressions = []analysis.Suppression{}
		}
		for _, d := range diags {
			report.Findings = append(report.Findings, jsonDiag{
				File: d.Pos.Filename, Line: d.Pos.Line, Column: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return err
		}
		if len(diags) > 0 {
			return fmt.Errorf("%d issue(s) in %d package(s)", len(diags), len(prog.Roots))
		}
		return nil
	}

	for _, d := range diags {
		fmt.Fprintln(out, d)
	}
	if len(diags) > 0 {
		return fmt.Errorf("%d issue(s) in %d package(s)", len(diags), len(prog.Roots))
	}
	fmt.Fprintf(out, "geompclint: %d package(s) clean\n", len(prog.Roots))
	return nil
}

// printSuppressions renders the //geompc:nolint inventory: every reasoned
// directive, which analyzer it silences, and whether it was exercised by
// the run that just completed.
func printSuppressions(out io.Writer, prog *analysis.Program, asJSON bool) error {
	sups := prog.Suppressions()
	if asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(sups)
	}
	active := 0
	for _, s := range sups {
		state := "EXPIRED"
		if s.Active {
			state = "active"
			active++
		}
		fmt.Fprintf(out, "%s:%d: %-12s %-8s %s\n", s.File, s.Line, s.Analyzer, state, s.Reason)
	}
	fmt.Fprintf(out, "geompclint: %d suppression(s), %d active\n", len(sups), active)
	return nil
}
