// Command geompclint is the repo's multichecker: it runs the
// internal/analysis suite — detercheck (determinism), preccast (precision
// safety), lockcheck (lock hygiene) and hotalloc (allocation-free hot
// paths) — over the packages matching the given patterns and exits nonzero
// on any diagnostic, including misused //geompc:nolint directives.
//
// Usage:
//
//	go run ./cmd/geompclint ./...          # lint the whole module
//	go run ./cmd/geompclint -list          # describe the analyzers
//	go run ./cmd/geompclint ./internal/runtime/ ./internal/obs/
//
// `make lint` and the CI lint job run the ./... form; a clean exit is part
// of the build contract.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"geompc/internal/analysis"
	"geompc/internal/analysis/detercheck"
	"geompc/internal/analysis/hotalloc"
	"geompc/internal/analysis/lockcheck"
	"geompc/internal/analysis/preccast"
)

// analyzers is the registered suite, in reporting-name order.
var analyzers = []*analysis.Analyzer{
	detercheck.Analyzer,
	hotalloc.Analyzer,
	lockcheck.Analyzer,
	preccast.Analyzer,
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "geompclint:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("geompclint", flag.ContinueOnError)
	fs.SetOutput(out)
	dir := fs.String("dir", ".", "module `directory` to lint from")
	list := fs.Bool("list", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(out, "%-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(out, "%-12s %s\n", analysis.NolintAnalyzerName,
			"reports misused //geompc:nolint directives (unknown analyzer, missing reason, expired)")
		return nil
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.LoadPackages(*dir, patterns...)
	if err != nil {
		return err
	}
	diags := analysis.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Fprintln(out, d)
	}
	if len(diags) > 0 {
		return fmt.Errorf("%d issue(s) in %d package(s)", len(diags), len(pkgs))
	}
	fmt.Fprintf(out, "geompclint: %d package(s) clean\n", len(pkgs))
	return nil
}
