package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-nt", "4", "-gpus", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"simulated schedule, NT=4", "makespan", "schedule digest"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "faults:") {
		t.Error("fault-free run must not print a faults line")
	}
}

func TestRunChaosSmoke(t *testing.T) {
	var out bytes.Buffer
	args := []string{"-nt", "5", "-gpus", "3", "-audit", "-faults", "kill:dev=1,at=0.0001"}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "faults: 1 device failure(s)") {
		t.Errorf("chaos run missing recovery summary:\n%s", out.String())
	}
}

func TestRunBadFaultSpec(t *testing.T) {
	if err := run([]string{"-faults", "kill:dev=99,at=0.5"}, &bytes.Buffer{}); err == nil {
		t.Fatal("out-of-range fault device must fail")
	}
}

func TestRunPlanCacheSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-nt", "4", "-gpus", "2", "-plan-cache"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "plan cache: 1 hit(s), 1 miss(es)") {
		t.Errorf("missing plan-cache counters:\n%s", out.String())
	}
}

func TestRunPlanCacheFaultsBypass(t *testing.T) {
	var out bytes.Buffer
	args := []string{"-nt", "5", "-gpus", "3", "-plan-cache", "-faults", "kill:dev=1,at=0.0001"}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "2 bypass(es)") {
		t.Errorf("armed run must bypass the cache twice:\n%s", out.String())
	}
}

func TestRunPlanCacheRefusesChrome(t *testing.T) {
	if err := run([]string{"-plan-cache", "-chrome", "/dev/null"}, &bytes.Buffer{}); err == nil {
		t.Fatal("-plan-cache with -chrome must fail")
	}
}

func TestRunEngineWorkersMatchesSerial(t *testing.T) {
	args := []string{"-nt", "4", "-gpus", "2"}
	var serial, par bytes.Buffer
	if err := run(args, &serial); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-engine-workers", "2"), &par); err != nil {
		t.Fatal(err)
	}
	if par.String() != serial.String() {
		t.Errorf("-engine-workers 2 changed the output:\nserial:\n%s\nparallel:\n%s", serial.String(), par.String())
	}
}

func TestRunSolverDirectByteIdentical(t *testing.T) {
	// -solver direct must be a no-op: the default path's bytes, unchanged.
	args := []string{"-nt", "4", "-gpus", "2"}
	var def, direct bytes.Buffer
	if err := run(args, &def); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-solver", "direct"), &direct); err != nil {
		t.Fatal(err)
	}
	if def.String() != direct.String() {
		t.Errorf("-solver direct changed the output:\ndefault:\n%s\ndirect:\n%s", def.String(), direct.String())
	}
}

func TestRunSolverCGSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-nt", "2", "-gpus", "2", "-solver", "cg", "-iters", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"simulated cg schedule, NT=2", "SPMV(0,", "ALPHA(0)", "iterations", "converged true"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "SPMV(1,") {
		t.Errorf("-iters 1 leaked iteration 1 tasks:\n%s", s)
	}
}

func TestRunSolverCGPlanCache(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-nt", "2", "-gpus", "2", "-solver", "cg", "-plan-cache"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "replay digest verified") {
		t.Errorf("missing plan-cache replay check:\n%s", out.String())
	}
}

func TestRunSolverUnknown(t *testing.T) {
	if err := run([]string{"-solver", "qr"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown -solver must fail")
	}
}

func TestRunSolverCGChromeRejected(t *testing.T) {
	if err := run([]string{"-solver", "cg", "-chrome", "/tmp/x.json"}, &bytes.Buffer{}); err == nil {
		t.Fatal("-chrome with -solver cg must fail")
	}
}
