// Command trace prints the simulated execution timeline of a small mixed-
// precision Cholesky — the Fig 3 demonstration: which task class runs
// where and when, and how the asynchronous runtime overlaps iterations.
//
// Usage:
//
//	trace -nt 4 -gpus 2
//	trace -nt 8 -chrome out.json     # export a Chrome/Perfetto trace
//	trace -audit -metrics            # audited run + metrics dump
//	trace -faults 'kill:dev=1,at=0.004' -audit   # chaos run with recovery
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"geompc/internal/bench"
	"geompc/internal/cholesky"
	"geompc/internal/cliflags"
	"geompc/internal/hw"
	planpkg "geompc/internal/plan"
	"geompc/internal/prec"
	"geompc/internal/precmap"
	"geompc/internal/runtime"
	solverpkg "geompc/internal/solver"
	"geompc/internal/tile"

	_ "geompc/internal/cg" // register the "cg" backend for -solver
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	nt := fs.Int("nt", 4, "tiles per dimension")
	ts := fs.Int("ts", 2048, "tile size")
	gpus := fs.Int("gpus", 2, "GPUs on one Summit node")
	iters := fs.Int("iters", 2, "print tasks of the first k iterations (0 = all)")
	chrome := fs.String("chrome", "", "write the timeline as Chrome trace-event JSON to this file")
	audit := fs.Bool("audit", false, "run the engine's invariant auditor; violations are fatal")
	metrics := fs.Bool("metrics", false, "dump the run's metrics registry after the schedule")
	v := cliflags.Register(fs, cliflags.Sched|cliflags.Faults|cliflags.PlanCache|cliflags.EngineWorkers|cliflags.Solver)
	if err := fs.Parse(args); err != nil {
		return err
	}
	pol, topo, err := bench.SchedOpts{Policy: v.Sched, Bcast: v.Bcast}.Resolve()
	if err != nil {
		return err
	}
	if v.PlanCache && *chrome != "" {
		return fmt.Errorf("-chrome needs a live run's interval traces; drop -plan-cache")
	}
	be, err := v.Backend()
	if err != nil {
		return err
	}

	d, err := tile.NewDesc(*nt**ts, *ts, 1, 1)
	if err != nil {
		return err
	}
	maps := precmap.New(precmap.Uniform(*nt, prec.FP16x32), 1e-4)
	plat, err := runtime.NewPlatform(hw.SummitNode, 1, *gpus)
	if err != nil {
		return err
	}
	injector, err := v.Injector(plat.NumDevices())
	if err != nil {
		return err
	}
	if be.Name() != "direct" {
		// Iterative backends share the flag surface but print their own
		// timeline; the direct path below stays byte-for-byte the
		// historical output.
		if *chrome != "" {
			return fmt.Errorf("-chrome exports the factorization timeline; use -solver direct")
		}
		scfg := solverpkg.Config{
			Desc: d, Maps: maps, Platform: plat, Trace: true, Audit: *audit,
			Faults: injector, Sched: pol, Bcast: topo, EngineWorkers: v.EngineWorkers,
		}
		return traceSolver(be, scfg, v.PlanCache, *iters, *metrics, out)
	}
	cfg := cholesky.Config{
		Desc: d, Maps: maps, Platform: plat, Trace: true, Audit: *audit, Faults: injector,
		Sched: pol, Bcast: topo, EngineWorkers: v.EngineWorkers,
	}
	var cache *planpkg.Cache
	if v.PlanCache {
		cache = planpkg.NewCache(nil)
	}
	res, err := cholesky.RunCached(cfg, cache)
	if err != nil {
		return err
	}
	if cache != nil {
		// Second run of the identical shape: a replay when the first run
		// compiled, a second live run when faults forced a bypass.
		rep, err := cholesky.RunCached(cfg, cache)
		if err != nil {
			return err
		}
		if rep.Digest() != res.Digest() {
			return fmt.Errorf("plan-cache replay digest %016x != compiled %016x", rep.Digest(), res.Digest())
		}
		res = rep
	}
	sched := res.Schedule(*nt)
	fmt.Fprintf(out, "simulated schedule, NT=%d, %d V100s (FP64 diagonal / FP16_32 off-diagonal):\n\n", *nt, *gpus)
	makespan := res.Stats.Makespan
	for _, t := range sched {
		if *iters > 0 && !inFirstIters(t.Name, *iters) {
			continue
		}
		barLen := 48
		s := int(t.Start / makespan * float64(barLen))
		e := int(t.End / makespan * float64(barLen))
		if e <= s {
			e = s + 1
		}
		bar := strings.Repeat(" ", s) + strings.Repeat("#", e-s) + strings.Repeat(" ", barLen-e)
		fmt.Fprintf(out, "dev%-2d |%s| %8.3f→%-8.3f ms  %s\n", t.Device, bar, t.Start*1e3, t.End*1e3, t.Name)
	}
	fmt.Fprintf(out, "\nmakespan %.3f ms, %d tasks, %.1f Tflop/s, schedule digest %016x\n",
		makespan*1e3, res.Stats.Tasks, res.Stats.Flops/1e12, res.Stats.ScheduleDigest)
	if st := res.Stats; st.DeviceFailures+st.TransientFaults > 0 {
		fmt.Fprintf(out, "faults: %d device failure(s), %d transient(s); recovery replayed %d task(s), retried %d, re-staged %s\n",
			st.DeviceFailures, st.TransientFaults, st.ReplayedTasks, st.RetriedTasks, humanBytes(st.RecoveryBytes))
	}

	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			return err
		}
		if err := res.WriteChromeTrace(f, *nt); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "chrome trace written to %s (open in ui.perfetto.dev or chrome://tracing)\n", *chrome)
	}
	if cache != nil {
		s := cache.Stats()
		fmt.Fprintf(out, "plan cache: %d hit(s), %d miss(es), %d invalidation(s), %d bypass(es); replay digest verified\n",
			s.Hits, s.Misses, s.Invalidations, s.Bypasses)
	}
	if *metrics {
		fmt.Fprintln(out, "\nmetrics:")
		if _, err := res.Metrics().WriteTo(out); err != nil {
			return err
		}
	}
	return nil
}

// traceSolver prints an iterative backend's timeline in the same bar
// format: one line per engine task, labeled by CG iteration.
func traceSolver(be solverpkg.Backend, cfg solverpkg.Config, useCache bool, iters int, metrics bool, out io.Writer) error {
	var cache *planpkg.Cache
	if useCache {
		cache = planpkg.NewCache(nil)
	}
	res, err := be.SolveCached(cfg, cache)
	if err != nil {
		return err
	}
	if cache != nil {
		rep, err := be.SolveCached(cfg, cache)
		if err != nil {
			return err
		}
		if rep.Digest() != res.Digest() {
			return fmt.Errorf("plan-cache replay digest %016x != compiled %016x", rep.Digest(), res.Digest())
		}
		res = rep
	}
	fmt.Fprintf(out, "simulated %s schedule, NT=%d, %d V100s (FP64 diagonal / FP16_32 off-diagonal):\n\n",
		be.Name(), cfg.Desc.NT, cfg.Platform.NumDevices())
	makespan := res.Stats.Makespan
	for _, t := range res.Schedule {
		if iters > 0 && !inIteration(t.Name, iters) {
			continue
		}
		barLen := 48
		s := int(t.Start / makespan * float64(barLen))
		e := int(t.End / makespan * float64(barLen))
		if e <= s {
			e = s + 1
		}
		bar := strings.Repeat(" ", s) + strings.Repeat("#", e-s) + strings.Repeat(" ", barLen-e)
		fmt.Fprintf(out, "dev%-2d |%s| %8.3f→%-8.3f ms  %s\n", t.Device, bar, t.Start*1e3, t.End*1e3, t.Name)
	}
	fmt.Fprintf(out, "\nmakespan %.3f ms, %d tasks, %.1f Tflop/s, schedule digest %016x\n",
		makespan*1e3, res.Stats.Tasks, res.Stats.Flops/1e12, res.Stats.ScheduleDigest)
	fmt.Fprintf(out, "%d iterations, modeled relative residual %.2e, converged %v\n",
		res.Iterations, res.Residual, res.Converged)
	if st := res.Stats; st.DeviceFailures+st.TransientFaults > 0 {
		fmt.Fprintf(out, "faults: %d device failure(s), %d transient(s); recovery replayed %d task(s), retried %d, re-staged %s\n",
			st.DeviceFailures, st.TransientFaults, st.ReplayedTasks, st.RetriedTasks, humanBytes(st.RecoveryBytes))
	}
	if cache != nil {
		s := cache.Stats()
		fmt.Fprintf(out, "plan cache: %d hit(s), %d miss(es), %d invalidation(s), %d bypass(es); replay digest verified\n",
			s.Hits, s.Misses, s.Invalidations, s.Bypasses)
	}
	if metrics {
		fmt.Fprintln(out, "\nmetrics:")
		if _, err := res.Metrics().WriteTo(out); err != nil {
			return err
		}
	}
	return nil
}

// inIteration reports whether an iterative task's label (leading
// coordinate, e.g. SPMV(3,0,1)) belongs to iteration < k.
func inIteration(name string, k int) bool {
	i := strings.IndexByte(name, '(')
	if i < 0 {
		return true
	}
	var kk int
	fmt.Sscanf(name[i+1:], "%d", &kk)
	return kk < k
}

func humanBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%d B", b)
}

// inFirstIters reports whether the task belongs to iteration < k of
// Algorithm 1 (its trailing coordinate).
func inFirstIters(name string, k int) bool {
	i := strings.LastIndexAny(name, ",(")
	if i < 0 {
		return true
	}
	var kk int
	fmt.Sscanf(name[i+1:], "%d", &kk)
	return kk < k
}
