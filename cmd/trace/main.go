// Command trace prints the simulated execution timeline of a small mixed-
// precision Cholesky — the Fig 3 demonstration: which task class runs
// where and when, and how the asynchronous runtime overlaps iterations.
//
// Usage:
//
//	trace -nt 4 -gpus 2
//	trace -nt 8 -chrome out.json     # export a Chrome/Perfetto trace
//	trace -audit -metrics            # audited run + metrics dump
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"geompc/internal/cholesky"
	"geompc/internal/hw"
	"geompc/internal/prec"
	"geompc/internal/precmap"
	"geompc/internal/runtime"
	"geompc/internal/tile"
)

func main() {
	nt := flag.Int("nt", 4, "tiles per dimension")
	ts := flag.Int("ts", 2048, "tile size")
	gpus := flag.Int("gpus", 2, "GPUs on one Summit node")
	iters := flag.Int("iters", 2, "print tasks of the first k iterations (0 = all)")
	chrome := flag.String("chrome", "", "write the timeline as Chrome trace-event JSON to this file")
	audit := flag.Bool("audit", false, "run the engine's invariant auditor; violations are fatal")
	metrics := flag.Bool("metrics", false, "dump the run's metrics registry after the schedule")
	flag.Parse()

	d, err := tile.NewDesc(*nt**ts, *ts, 1, 1)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(1)
	}
	maps := precmap.New(precmap.Uniform(*nt, prec.FP16x32), 1e-4)
	plat, err := runtime.NewPlatform(hw.SummitNode, 1, *gpus)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(1)
	}
	res, err := cholesky.Run(cholesky.Config{Desc: d, Maps: maps, Platform: plat, Trace: true, Audit: *audit})
	if err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(1)
	}
	sched := res.Schedule(*nt)
	fmt.Printf("simulated schedule, NT=%d, %d V100s (FP64 diagonal / FP16_32 off-diagonal):\n\n", *nt, *gpus)
	makespan := res.Stats.Makespan
	for _, t := range sched {
		if *iters > 0 && !inFirstIters(t.Name, *iters) {
			continue
		}
		barLen := 48
		s := int(t.Start / makespan * float64(barLen))
		e := int(t.End / makespan * float64(barLen))
		if e <= s {
			e = s + 1
		}
		bar := strings.Repeat(" ", s) + strings.Repeat("#", e-s) + strings.Repeat(" ", barLen-e)
		fmt.Printf("dev%-2d |%s| %8.3f→%-8.3f ms  %s\n", t.Device, bar, t.Start*1e3, t.End*1e3, t.Name)
	}
	fmt.Printf("\nmakespan %.3f ms, %d tasks, %.1f Tflop/s, schedule digest %016x\n",
		makespan*1e3, res.Stats.Tasks, res.Stats.Flops/1e12, res.Stats.ScheduleDigest)

	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		if err := res.WriteChromeTrace(f, *nt); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		fmt.Printf("chrome trace written to %s (open in ui.perfetto.dev or chrome://tracing)\n", *chrome)
	}
	if *metrics {
		fmt.Println("\nmetrics:")
		if _, err := res.Metrics().WriteTo(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
	}
}

// inFirstIters reports whether the task belongs to iteration < k of
// Algorithm 1 (its trailing coordinate).
func inFirstIters(name string, k int) bool {
	i := strings.LastIndexAny(name, ",(")
	if i < 0 {
		return true
	}
	var kk int
	fmt.Sscanf(name[i+1:], "%d", &kk)
	return kk < k
}
