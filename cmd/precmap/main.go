// Command precmap visualizes the precision machinery of §V and §VI:
//
//	precmap -demo          small kernel/storage map example (Fig 2)
//	precmap -comm          the Algorithm 2 communication map (Fig 4)
//	precmap -fig7          tile-precision fractions for the three
//	                       applications at scale (Fig 7)
//
// The Fig 7 defaults are scaled down from the paper's 409,600² matrix; use
// -n 409600 -ts 2048 to regenerate it at full scale (needs a few minutes
// for the sampled norm estimation).
package main

import (
	"flag"
	"fmt"
	"os"

	"geompc/internal/bench"
	"geompc/internal/prec"
)

func main() {
	demo := flag.Bool("demo", false, "print a small kernel/storage precision map (Fig 2)")
	comm := flag.Bool("comm", false, "print the Algorithm 2 communication map (Fig 4)")
	fig7 := flag.Bool("fig7", false, "print the per-application precision fractions (Fig 7)")
	n := flag.Int("n", 65536, "matrix size for -fig7 (paper: 409600)")
	ts := flag.Int("ts", 2048, "tile size (paper: 2048)")
	demoN := flag.Int("demo-n", 8192, "matrix size for -demo/-comm")
	demoTS := flag.Int("demo-ts", 1024, "tile size for -demo/-comm")
	samples := flag.Int("samples", 128, "tile-norm samples per tile")
	app := flag.String("app", "2D-Matern", "application for -demo/-comm")
	seed := flag.Uint64("seed", 3, "RNG seed")
	flag.Parse()

	if !*demo && !*comm && !*fig7 {
		*demo, *comm, *fig7 = true, true, true
	}

	if *demo || *comm {
		a, ok := bench.AppByName(*app)
		if !ok {
			fmt.Fprintf(os.Stderr, "precmap: unknown app %q\n", *app)
			os.Exit(1)
		}
		res, err := bench.PrecisionMap(a, *demoN, *demoTS, *samples, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "precmap:", err)
			os.Exit(1)
		}
		if *demo {
			fmt.Printf("## Fig 2a: kernel-precision map (%s, N=%d, NT=%d)\n", a.Name, *demoN, res.NT)
			fmt.Println("D=FP64  S=FP32  h=FP16_32  H=FP16")
			fmt.Println(bench.RenderKernelMap(res.Maps))
			fmt.Printf("## Fig 2b: storage-precision map\n")
			fmt.Println(bench.RenderStorageMap(res.Maps))
		}
		if *comm {
			fmt.Printf("## Fig 4b: communication-precision map (Algorithm 2); '*' marks STC\n")
			fmt.Println(bench.RenderCommMap(res.Maps))
			fmt.Printf("STC share of communication-issuing tasks: %.1f%%\n\n", 100*res.STCShare)
		}
	}

	if *fig7 {
		t := bench.NewTable(
			fmt.Sprintf("Fig 7: kernel precision per tile (N=%d, tile %d)", *n, *ts),
			"App", "u_req", "FP64%", "FP32%", "FP16_32%", "FP16%", "STC%")
		for _, a := range bench.Apps() {
			res, err := bench.PrecisionMap(a, *n, *ts, *samples, *seed)
			if err != nil {
				fmt.Fprintln(os.Stderr, "precmap:", err)
				os.Exit(1)
			}
			f := res.Fractions
			t.Add(a.Name, fmt.Sprintf("%.0e", a.UReq),
				100*f[prec.FP64], 100*f[prec.FP32], 100*f[prec.FP16x32], 100*f[prec.FP16],
				100*res.STCShare)
		}
		t.Write(os.Stdout)
	}
}
