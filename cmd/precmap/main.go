// Command precmap visualizes the precision machinery of §V and §VI:
//
//	precmap -demo          small kernel/storage map example (Fig 2)
//	precmap -comm          the Algorithm 2 communication map (Fig 4)
//	precmap -fig7          tile-precision fractions for the three
//	                       applications at scale (Fig 7)
//
// The Fig 7 defaults are scaled down from the paper's 409,600² matrix; use
// -n 409600 -ts 2048 to regenerate it at full scale (needs a few minutes
// for the sampled norm estimation).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"geompc/internal/bench"
	"geompc/internal/prec"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "precmap:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("precmap", flag.ContinueOnError)
	demo := fs.Bool("demo", false, "print a small kernel/storage precision map (Fig 2)")
	comm := fs.Bool("comm", false, "print the Algorithm 2 communication map (Fig 4)")
	fig7 := fs.Bool("fig7", false, "print the per-application precision fractions (Fig 7)")
	n := fs.Int("n", 65536, "matrix size for -fig7 (paper: 409600)")
	ts := fs.Int("ts", 2048, "tile size (paper: 2048)")
	demoN := fs.Int("demo-n", 8192, "matrix size for -demo/-comm")
	demoTS := fs.Int("demo-ts", 1024, "tile size for -demo/-comm")
	samples := fs.Int("samples", 128, "tile-norm samples per tile")
	app := fs.String("app", "2D-Matern", "application for -demo/-comm")
	seed := fs.Uint64("seed", 3, "RNG seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if !*demo && !*comm && !*fig7 {
		*demo, *comm, *fig7 = true, true, true
	}

	if *demo || *comm {
		a, ok := bench.AppByName(*app)
		if !ok {
			return fmt.Errorf("unknown app %q", *app)
		}
		res, err := bench.PrecisionMap(a, *demoN, *demoTS, *samples, *seed)
		if err != nil {
			return err
		}
		if *demo {
			fmt.Fprintf(out, "## Fig 2a: kernel-precision map (%s, N=%d, NT=%d)\n", a.Name, *demoN, res.NT)
			fmt.Fprintln(out, "D=FP64  S=FP32  h=FP16_32  H=FP16")
			fmt.Fprintln(out, bench.RenderKernelMap(res.Maps))
			fmt.Fprintf(out, "## Fig 2b: storage-precision map\n")
			fmt.Fprintln(out, bench.RenderStorageMap(res.Maps))
		}
		if *comm {
			fmt.Fprintf(out, "## Fig 4b: communication-precision map (Algorithm 2); '*' marks STC\n")
			fmt.Fprintln(out, bench.RenderCommMap(res.Maps))
			fmt.Fprintf(out, "STC share of communication-issuing tasks: %.1f%%\n\n", 100*res.STCShare)
		}
	}

	if *fig7 {
		t := bench.NewTable(
			fmt.Sprintf("Fig 7: kernel precision per tile (N=%d, tile %d)", *n, *ts),
			"App", "u_req", "FP64%", "FP32%", "FP16_32%", "FP16%", "STC%")
		for _, a := range bench.Apps() {
			res, err := bench.PrecisionMap(a, *n, *ts, *samples, *seed)
			if err != nil {
				return err
			}
			f := res.Fractions
			t.Add(a.Name, fmt.Sprintf("%.0e", a.UReq),
				100*f[prec.FP64], 100*f[prec.FP32], 100*f[prec.FP16x32], 100*f[prec.FP16],
				100*res.STCShare)
		}
		t.Write(out)
	}
	return nil
}
