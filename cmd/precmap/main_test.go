package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-demo", "-comm", "-demo-n", "1024", "-demo-ts", "256"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Fig 2a: kernel-precision map", "Fig 2b: storage-precision map", "Fig 4b: communication-precision map"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunBadApp(t *testing.T) {
	if err := run([]string{"-demo", "-app", "4D-nope"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown app must fail")
	}
}
