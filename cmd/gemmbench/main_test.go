package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-table1", "-table2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Table I: peak performance", "Table II: time measurement on V100"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunBadSizes(t *testing.T) {
	if err := run([]string{"-fig1", "-acc-sizes", "64,nope"}, &bytes.Buffer{}); err == nil {
		t.Fatal("bad -acc-sizes must fail")
	}
}
