// Command gemmbench regenerates the paper's GEMM-level results: Table I
// (peak performance per precision per GPU), Fig 1 (GEMM accuracy and
// performance across precisions on V100/A100/H100), and Table II (time to
// move a tile to a V100 and execute a GEMM on it, per precision).
//
// Usage:
//
//	gemmbench -table1
//	gemmbench -fig1 [-acc-sizes 64,128,256] [-perf-sizes 2048,8192,32768]
//	gemmbench -table2
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"geompc/internal/bench"
	"geompc/internal/hw"
)

func parseSizes(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad size %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gemmbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gemmbench", flag.ContinueOnError)
	table1 := fs.Bool("table1", false, "print Table I (GPU peak performance)")
	table2 := fs.Bool("table2", false, "print Table II (tile move + GEMM times on V100)")
	fig1 := fs.Bool("fig1", false, "run Fig 1 (GEMM accuracy and performance)")
	accSizes := fs.String("acc-sizes", "64,128,256,512", "GEMM sizes for the accuracy study (real computation)")
	perfSizes := fs.String("perf-sizes", "2048,4096,8192,16384,32768", "GEMM sizes for the performance model")
	seed := fs.Uint64("seed", 42, "RNG seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if !*table1 && !*table2 && !*fig1 {
		*table1, *table2, *fig1 = true, true, true
	}

	if *table1 {
		bench.Table1().Write(out)
	}

	if *fig1 {
		sizes, err := parseSizes(*accSizes)
		if err != nil {
			return err
		}
		acc := bench.GemmAccuracy(sizes, *seed)
		t := bench.NewTable("Fig 1 (accuracy): relative Frobenius error vs FP64", "N", "Precision", "RelErr")
		for _, r := range acc {
			t.Add(r.N, r.Prec.String(), fmt.Sprintf("%.3e", r.Err))
		}
		t.Write(out)

		psizes, err := parseSizes(*perfSizes)
		if err != nil {
			return err
		}
		perf := bench.GemmPerformance([]*hw.GPUSpec{hw.V100, hw.A100, hw.H100}, psizes)
		tp := bench.NewTable("Fig 1 (performance): modeled GEMM throughput (conversion included)",
			"GPU", "N", "Precision", "Tflop/s", "%peak")
		for _, r := range perf {
			tp.Add(r.GPU, r.N, r.Prec.String(), r.Tflops, r.PeakPct)
		}
		tp.Write(out)
	}

	if *table2 {
		sizes := []int{2048, 4096, 6144, 8192, 10240}
		rows := bench.Table2(sizes)
		t := bench.NewTable("Table II: time measurement on V100 (milliseconds)",
			append([]string{"Matrix Size"}, sizesToStrings(sizes)...)...)
		for _, r := range rows {
			cells := make([]any, 0, len(sizes)+1)
			cells = append(cells, r.Label)
			for _, v := range r.TimeMs {
				cells = append(cells, fmt.Sprintf("%.2f", v))
			}
			t.Add(cells...)
		}
		t.Write(out)
	}
	return nil
}

func sizesToStrings(sizes []int) []string {
	out := make([]string, len(sizes))
	for i, s := range sizes {
		out[i] = strconv.Itoa(s)
	}
	return out
}
