package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-weak", "-nodes", "1", "-base-n", "8192"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Fig 12a: weak scalability") {
		t.Errorf("missing weak-scaling table:\n%s", out.String())
	}
}

func TestRunFaultsSmoke(t *testing.T) {
	var out bytes.Buffer
	args := []string{"-strong", "-nodes", "1", "-strong-n", "8192", "-faults", "slow:dev=0,from=0,to=1,x=4"}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Fig 12b: strong scalability") {
		t.Errorf("missing strong-scaling table:\n%s", out.String())
	}
}

func TestRunWorkersMatchesSerial(t *testing.T) {
	args := []string{"-weak", "-nodes", "1,2", "-base-n", "8192"}
	var serial, par bytes.Buffer
	if err := run(args, &serial); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-workers", "2"), &par); err != nil {
		t.Fatal(err)
	}
	// The parallel run appends a sweep summary; the table must be identical.
	if !strings.HasPrefix(par.String(), serial.String()) {
		t.Errorf("-workers 2 changed the table:\nserial:\n%s\nparallel:\n%s", serial.String(), par.String())
	}
	if !strings.Contains(par.String(), "sweep: ") {
		t.Errorf("missing sweep summary:\n%s", par.String())
	}
}

func TestRunEngineWorkersMatchesSerial(t *testing.T) {
	// Two nodes = two ranks: the second grid point actually runs the
	// parallel engine rather than falling back to the serial loop.
	args := []string{"-weak", "-nodes", "1,2", "-base-n", "8192"}
	var serial, par bytes.Buffer
	if err := run(args, &serial); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-engine-workers", "2"), &par); err != nil {
		t.Fatal(err)
	}
	if par.String() != serial.String() {
		t.Errorf("-engine-workers 2 changed the table:\nserial:\n%s\nparallel:\n%s", serial.String(), par.String())
	}
}
