// Command scale reproduces Fig 12's Summit evaluation: weak scalability
// (12a), strong scalability at fixed matrix size (12b), and the
// mixed-precision effect on 64 nodes / 384 GPUs (12c).
//
// Usage:
//
//	scale -weak                       # Fig 12a, 1..64 nodes
//	scale -strong                     # Fig 12b, N=798720
//	scale -mp                         # Fig 12c, 64 nodes
//	scale -mp -nodes 8 -sizes 98304,196608   # scaled down
//	scale -weak -faults 'flaky:dev=0,at=0.1,backoff=0.01'   # resilience
//
// The full 64-node runs simulate ~10⁷ tasks; expect minutes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"geompc/internal/bench"
	"geompc/internal/cliflags"
	"geompc/internal/sweep"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "scale:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scale", flag.ContinueOnError)
	weak := fs.Bool("weak", false, "run weak scaling (Fig 12a)")
	strong := fs.Bool("strong", false, "run strong scaling (Fig 12b)")
	mp := fs.Bool("mp", false, "run the MP effect at scale (Fig 12c)")
	nodesFlag := fs.String("nodes", "1,4,16,64", "node counts for -weak/-strong")
	mpNodes := fs.Int("mp-nodes", 64, "node count for -mp (paper: 64 = 384 GPUs)")
	baseN := fs.Int("base-n", 98304, "weak-scaling matrix size on the first node count")
	strongN := fs.Int("strong-n", 798720, "strong-scaling matrix size (paper: 798720)")
	sizesFlag := fs.String("sizes", "196608,399360,598016,798720", "matrix sizes for -mp")
	ts := fs.Int("ts", 2048, "tile size")
	v := cliflags.Register(fs, cliflags.Sched|cliflags.Faults|cliflags.Workers|cliflags.EngineWorkers)
	if err := fs.Parse(args); err != nil {
		return err
	}
	so := v.SchedOpts()
	var sum sweep.Summary
	if v.Workers != 0 {
		so.Summary = &sum
	}

	if !*weak && !*strong && !*mp {
		*weak, *strong, *mp = true, true, true
	}

	nodes, err := cliflags.ParseSizes(*nodesFlag)
	if err != nil {
		return err
	}

	if *weak {
		rows, err := bench.WeakScalingOpts(nodes, *baseN, *ts, v.Faults, so)
		if err != nil {
			return err
		}
		t := bench.NewTable("Fig 12a: weak scalability on Summit (FP64)",
			"Nodes", "GPUs", "N", "Tflop/s", "%peak", "Time(s)")
		for _, r := range rows {
			t.Add(r.Nodes, r.GPUs, r.N, r.Tflops, r.PctPeak, r.Time)
		}
		t.Write(out)
		if v.Workers != 0 {
			fmt.Fprintf(out, "%s\n", sum)
		}
	}

	if *strong {
		rows, err := bench.StrongScalingOpts(nodes, *strongN, *ts, v.Faults, so)
		if err != nil {
			return err
		}
		t := bench.NewTable(fmt.Sprintf("Fig 12b: strong scalability on Summit (FP64, N=%d)", *strongN),
			"Nodes", "GPUs", "Tflop/s", "%peak", "Time(s)")
		for _, r := range rows {
			t.Add(r.Nodes, r.GPUs, r.Tflops, r.PctPeak, r.Time)
		}
		t.Write(out)
		if v.Workers != 0 {
			fmt.Fprintf(out, "%s\n", sum)
		}
	}

	if *mp {
		sizes, err := cliflags.ParseSizes(*sizesFlag)
		if err != nil {
			return err
		}
		rows, err := bench.MPEffect(*mpNodes, sizes, *ts)
		if err != nil {
			return err
		}
		t := bench.NewTable(fmt.Sprintf("Fig 12c: MP effect on %d nodes (%d GPUs)", *mpNodes, *mpNodes*6),
			"Config", "N", "Tflop/s", "Speedup vs FP64", "Time(s)")
		for _, r := range rows {
			t.Add(r.Config, r.N, r.Tflops, r.Speedup, r.Time)
		}
		t.Write(out)
	}
	return nil
}
