package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-machine", "Summit", "-gpus", "1", "-sizes", "16384"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Fig 8: STC vs TTC on 1×V100", "STC/TTC speedup at N=16384"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunBadMachine(t *testing.T) {
	if err := run([]string{"-machine", "Frontier"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown machine must fail")
	}
}

func TestRunPlanCacheSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-machine", "Summit", "-gpus", "1", "-sizes", "8192", "-plan-cache"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "plan cache:") {
		t.Errorf("missing plan-cache counters:\n%s", out.String())
	}
}

func TestRunWorkersMatchesSerial(t *testing.T) {
	args := []string{"-machine", "Summit", "-gpus", "1", "-sizes", "8192,16384"}
	var serial, par bytes.Buffer
	if err := run(args, &serial); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-workers", "2"), &par); err != nil {
		t.Fatal(err)
	}
	// The parallel run appends a sweep summary; the tables must be identical.
	if !strings.HasPrefix(par.String(), serial.String()) {
		t.Errorf("-workers 2 changed the tables:\nserial:\n%s\nparallel:\n%s", serial.String(), par.String())
	}
	if !strings.Contains(par.String(), "sweep: ") {
		t.Errorf("missing sweep summary:\n%s", par.String())
	}
}

func TestRunEngineWorkersMatchesSerial(t *testing.T) {
	args := []string{"-machine", "Summit", "-gpus", "1", "-sizes", "8192"}
	var serial, par bytes.Buffer
	if err := run(args, &serial); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-engine-workers", "2"), &par); err != nil {
		t.Fatal(err)
	}
	if par.String() != serial.String() {
		t.Errorf("-engine-workers 2 changed the tables:\nserial:\n%s\nparallel:\n%s", serial.String(), par.String())
	}
}

func TestRunSolverDirectByteIdentical(t *testing.T) {
	// -solver direct must be a no-op: the default path's bytes, unchanged.
	args := []string{"-machine", "Summit", "-gpus", "1", "-sizes", "8192,16384"}
	var def, direct bytes.Buffer
	if err := run(args, &def); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-solver", "direct"), &direct); err != nil {
		t.Fatal(err)
	}
	if def.String() != direct.String() {
		t.Errorf("-solver direct changed the output:\ndefault:\n%s\ndirect:\n%s", def.String(), direct.String())
	}
}

func TestRunSolverCGSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-machine", "Summit", "-gpus", "1", "-sizes", "8192", "-solver", "cg"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"solver backend: cg", "Fig 8: STC vs TTC on 1×V100"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunSolverUnknown(t *testing.T) {
	if err := run([]string{"-sizes", "8192", "-solver", "qr"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown -solver must fail")
	}
}
