// Command convbench reproduces the automated precision conversion study:
// Fig 8 (STC vs TTC on one V100/A100/H100 GPU) and Fig 11 (one full Summit
// or Guyot node), reporting achieved Tflop/s, efficiency against the
// configuration's dominant-precision peak, and data motion.
//
// Usage:
//
//	convbench -gpus 1 -machine Summit     # Fig 8a
//	convbench -gpus 1 -machine Guyot      # Fig 8b
//	convbench -gpus 1 -machine Haxane     # Fig 8c
//	convbench -node -machine Summit       # Fig 11a (6×V100)
//	convbench -node -machine Guyot        # Fig 11b (8×A100)
//	convbench -node -faults 'kill:dev=5,at=0.5'   # with a device failure
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"geompc/internal/bench"
	"geompc/internal/cliflags"
	"geompc/internal/hw"
	planpkg "geompc/internal/plan"
	"geompc/internal/sweep"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "convbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("convbench", flag.ContinueOnError)
	machine := fs.String("machine", "Summit", "node type: Summit (V100), Guyot (A100), Haxane (H100)")
	gpus := fs.Int("gpus", 1, "GPUs to use (ignored with -node)")
	node := fs.Bool("node", false, "use every GPU of the node (Fig 11)")
	sizesFlag := fs.String("sizes", "", "comma-separated matrix sizes (default: per-machine sweep)")
	ts := fs.Int("ts", 2048, "tile size")
	v := cliflags.Register(fs, cliflags.Sched|cliflags.Faults|cliflags.PlanCache|cliflags.Workers|cliflags.EngineWorkers|cliflags.Solver)
	if err := fs.Parse(args); err != nil {
		return err
	}

	nd, err := hw.NodeByName(*machine)
	if err != nil {
		return err
	}
	g := *gpus
	if *node {
		g = nd.GPUs
	}

	var sizes []int
	if *sizesFlag == "" {
		base := []int{16384, 32768, 49152, 65536, 81920, 98304, 122880}
		if g > 1 {
			base = append(base, 163840, 196608)
		}
		sizes = base
	} else {
		if sizes, err = cliflags.ParseSizes(*sizesFlag); err != nil {
			return err
		}
	}

	so := v.SchedOpts()
	var sum sweep.Summary
	if v.Workers != 0 {
		so.Summary = &sum
	}
	var cache *planpkg.Cache
	var rows []bench.ConvRow
	var err2 error
	if v.PlanCache {
		cache = planpkg.NewCache(nil)
		rows, err2 = bench.ConvSweepCached(nd, 1, g, sizes, *ts, v.Faults, so, cache)
	} else {
		rows, err2 = bench.ConvSweepOpts(nd, 1, g, sizes, *ts, v.Faults, so)
	}
	if err2 != nil {
		return err2
	}
	fig := "Fig 8"
	if g > 1 {
		fig = "Fig 11"
	}
	if v.Solver != "" && v.Solver != "direct" {
		fmt.Fprintf(out, "solver backend: %s\n\n", v.Solver)
	}
	t := bench.NewTable(
		fmt.Sprintf("%s: STC vs TTC on %d×%s (%s)", fig, g, nd.GPU.Name, nd.Name),
		"Config", "Strategy", "N", "Tflop/s", "%peak", "Time(s)", "H2D")
	for _, r := range rows {
		t.Add(r.Config, r.Strategy, r.N, r.Tflops, r.PctPeak, r.Time, bench.HumanBytes(r.BytesH2D))
	}
	t.Write(out)

	// Summarize STC/TTC speedups per config at the largest size.
	last := sizes[len(sizes)-1]
	speed := map[string]map[string]float64{}
	for _, r := range rows {
		if r.N != last {
			continue
		}
		if speed[r.Config] == nil {
			speed[r.Config] = map[string]float64{}
		}
		speed[r.Config][r.Strategy] = r.Tflops
	}
	st := bench.NewTable(fmt.Sprintf("STC/TTC speedup at N=%d", last), "Config", "Speedup")
	for _, cfg := range bench.ConvConfigs() {
		m := speed[cfg.Name]
		if m == nil || m["TTC"] == 0 {
			continue
		}
		st.Add(cfg.Name, m["STC"]/m["TTC"])
	}
	st.Write(out)
	if cache != nil {
		s := cache.Stats()
		fmt.Fprintf(out, "\nplan cache: %d hit(s), %d miss(es), %d invalidation(s) dirtying %d task(s), %d bypass(es)\n",
			s.Hits, s.Misses, s.Invalidations, s.TasksInvalidated, s.Bypasses)
		if v.Workers != 0 {
			fmt.Fprintln(out, "(cache shared across sweep workers; counters are scheduling-dependent, rows are not)")
		}
	}
	if v.Workers != 0 {
		fmt.Fprintf(out, "\n%s\n", sum)
	}
	return nil
}
