// Command power reproduces the energy results: Fig 9 (GPU occupancy over
// time on the H100 for four precision configurations) and Fig 10 (power
// consumption over time, total joules, and Gflops/W for FP64 vs the
// adaptive mixed-precision approach on V100, A100 and H100).
//
// Usage:
//
//	power -occupancy                  # Fig 9 (H100)
//	power -fig10                      # Fig 10, all three GPUs
//	power -fig10 -machine Summit      # Fig 10, V100 panel only
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"geompc/internal/bench"
	"geompc/internal/hw"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "power:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("power", flag.ContinueOnError)
	occupancy := fs.Bool("occupancy", false, "print Fig 9 occupancy traces (H100)")
	fig10 := fs.Bool("fig10", false, "print Fig 10 power/energy comparison")
	machine := fs.String("machine", "", "restrict Fig 10 to one node type (Summit/Guyot/Haxane)")
	n := fs.Int("n", 0, "matrix size override (default: paper sizing per GPU)")
	ts := fs.Int("ts", 2048, "tile size")
	bins := fs.Int("bins", 40, "trace windows")
	trace := fs.Bool("trace", false, "print the full power trace, not just totals")
	chrome := fs.String("chrome", "", "write the first Fig 10 run's timeline as Chrome trace JSON to this file")
	audit := fs.Bool("audit", false, "run every factorization under the engine's invariant auditor")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if !*occupancy && !*fig10 {
		*occupancy, *fig10 = true, true
	}

	if *occupancy {
		// Fig 9: H100, largest Fig 8c size.
		size := *n
		if size == 0 {
			size = 81920
		}
		fmt.Fprintf(out, "## Fig 9: GPU occupancy of one H100 (N=%d)\n", size)
		for _, cfg := range bench.OccupancyConfigs() {
			cfg.Audit = *audit
			run, err := bench.EnergyRunOne(hw.HaxaneNode, cfg, size, *ts, *bins, 1)
			if err != nil {
				return err
			}
			var avg float64
			for _, o := range run.Occupancy {
				avg += o.V
			}
			avg /= float64(len(run.Occupancy))
			fmt.Fprintf(out, "%-14s time %7.2fs  mean occupancy %5.1f%%  trace:", cfg.Label, run.Time, 100*avg)
			for _, o := range run.Occupancy {
				fmt.Fprintf(out, " %2.0f", 100*o.V)
			}
			fmt.Fprintln(out)
		}
		fmt.Fprintln(out)
	}

	if *fig10 {
		nodes := []*hw.NodeSpec{hw.SummitNode, hw.GuyotNode, hw.HaxaneNode}
		if *machine != "" {
			nd, err := hw.NodeByName(*machine)
			if err != nil {
				return err
			}
			nodes = []*hw.NodeSpec{nd}
		}
		for _, nd := range nodes {
			// Paper sizing: V100 uses the largest FP64 matrix fitting its
			// memory (61,440); A100/H100 use 122,880 (Haxane host limit).
			size := *n
			if size == 0 {
				if nd.GPU == hw.V100 {
					size = 61440
				} else {
					size = 122880
				}
			}
			t := bench.NewTable(
				fmt.Sprintf("Fig 10: power/energy on one %s (N=%d)", nd.GPU.Name, size),
				"Config", "Time(s)", "Energy(kJ)", "AvgPower(W)", "Gflops/W")
			for _, cfg := range bench.EnergySweepConfigs() {
				cfg.Audit = *audit
				run, err := bench.EnergyRunOne(nd, cfg, size, *ts, *bins, 1)
				if err != nil {
					return err
				}
				t.Add(run.Label, run.Time, run.EnergyJ/1e3, run.AvgPower, run.GflopsPerW)
				if *chrome != "" {
					if err := writeChrome(*chrome, run); err != nil {
						return err
					}
					fmt.Fprintf(out, "chrome trace of %s written to %s\n", run.Label, *chrome)
					*chrome = "" // first run only
				}
				if *trace {
					var sb strings.Builder
					for _, p := range run.Power {
						fmt.Fprintf(&sb, " %4.0f", p.V)
					}
					fmt.Fprintf(out, "trace %-14s (W):%s\n", run.Label, sb.String())
				}
			}
			t.Write(out)
			fmt.Fprintf(out, "max TDP on %s: %.0f W\n\n", nd.GPU.Name, nd.GPU.TDP)
		}
	}
	return nil
}

// writeChrome exports one energy run's timeline as Chrome trace JSON.
func writeChrome(path string, run *bench.EnergyRun) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := run.Res.WriteChromeTrace(f, 0); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
