package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig10", "-machine", "Summit", "-n", "16384"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Fig 10: power/energy on one V100 (N=16384)", "max TDP on V100"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunBadMachine(t *testing.T) {
	if err := run([]string{"-fig10", "-machine", "Frontier"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown machine must fail")
	}
}
