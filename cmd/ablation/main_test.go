package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunChaosSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-chaos", "-n", "16384", "-chaos-gpus", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"resilience: fault plan vs precision configuration", "fault-free", "chaos"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunLookaheadSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-lookahead", "-n", "16384"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "lookahead") {
		t.Errorf("missing lookahead table:\n%s", out.String())
	}
}

func TestRunSchedSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-sched", "-n", "16384", "-sched-ranks", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"scheduling policy (FP64/FP16_32 Auto, N=16384, full Summit node)",
		"policy    time(s)  Tflop/s  energy(J)  H2D",
		"broadcast topology (FP64/FP16_32 Auto, N=16384, 3 ranks)",
		"topology  time(s)  energy(J)  net",
		"fifo", "locality", "cp", "binomial", "flat", "chain",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunChaosSingleGPU(t *testing.T) {
	if err := run([]string{"-chaos", "-chaos-gpus", "1"}, &bytes.Buffer{}); err == nil {
		t.Fatal("single-GPU chaos must fail (no failover target)")
	}
}

func TestRunWorkersMatchesSerial(t *testing.T) {
	args := []string{"-sched", "-chaos", "-n", "16384", "-chaos-gpus", "2", "-sched-ranks", "3"}
	var serial, par bytes.Buffer
	if err := run(args, &serial); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-workers", "2"), &par); err != nil {
		t.Fatal(err)
	}
	// ablation prints no sweep summary, so the output must be byte-identical.
	if serial.String() != par.String() {
		t.Errorf("-workers 2 changed the output:\nserial:\n%s\nparallel:\n%s", serial.String(), par.String())
	}
}

func TestRunPlanSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-plan", "-n", "16384", "-plan-evals", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"compiled-plan cache", "plan-cache", "fresh"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunSolverDirectByteIdentical(t *testing.T) {
	// -solver direct must be a no-op on a deterministic family's bytes
	// (the -plan family prints host wall-clock, so it is excluded here and
	// covered by TestRunSolversPlanCG below).
	args := []string{"-solvers", "-lookahead", "-n", "16384"}
	var def, direct bytes.Buffer
	if err := run(args, &def); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-solver", "direct"), &direct); err != nil {
		t.Fatal(err)
	}
	if def.String() != direct.String() {
		t.Errorf("-solver direct changed the output:\ndefault:\n%s\ndirect:\n%s", def.String(), direct.String())
	}
}

func TestRunSolversSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-solvers"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"solver backends: direct factorization vs mixed-precision CG", "direct", "cg"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunSolversPlanCG(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-plan", "-n", "16384", "-plan-evals", "4", "-solver", "cg"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"compiled-plan cache [cg backend]", "plan-cache", "fresh"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunSolverUnknown(t *testing.T) {
	if err := run([]string{"-solvers", "-solver", "qr"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown -solver must fail")
	}
}
