package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunChaosSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-chaos", "-n", "16384", "-chaos-gpus", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"resilience: fault plan vs precision configuration", "fault-free", "chaos"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunLookaheadSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-lookahead", "-n", "16384"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "lookahead") {
		t.Errorf("missing lookahead table:\n%s", out.String())
	}
}

func TestRunChaosSingleGPU(t *testing.T) {
	if err := run([]string{"-chaos", "-chaos-gpus", "1"}, &bytes.Buffer{}); err == nil {
		t.Fatal("single-GPU chaos must fail (no failover target)")
	}
}
