// Command ablation quantifies the design choices DESIGN.md calls out:
//
//   - adaptive (Higham–Mary) precision selection vs the band-based
//     assignment of the prior work (refs [12], [13]), at the same
//     tile-wise accuracy guarantee;
//   - the engine's stream-pipeline depth (double buffering);
//   - the Monte-Carlo arithmetic probe (§V) that justifies each
//     application's required accuracy u_req.
//
// Usage:
//
//	ablation -banded
//	ablation -lookahead
//	ablation -probe [-probe-n 400]
package main

import (
	"flag"
	"fmt"
	"os"

	"geompc/internal/bench"
	"geompc/internal/core"
	"geompc/internal/hw"
	"geompc/internal/mle"
)

func main() {
	banded := flag.Bool("banded", false, "adaptive vs banded precision maps")
	lookahead := flag.Bool("lookahead", false, "stream pipeline depth sweep")
	probe := flag.Bool("probe", false, "Monte-Carlo arithmetic u_req probe")
	tlrFlag := flag.Bool("tlr", false, "tile low-rank + mixed precision storage study (§VIII future work)")
	n := flag.Int("n", 65536, "matrix size for -banded/-lookahead")
	probeN := flag.Int("probe-n", 400, "locations for -probe")
	ts := flag.Int("ts", 2048, "tile size")
	flag.Parse()

	if !*banded && !*lookahead && !*probe && !*tlrFlag {
		*banded, *lookahead, *probe, *tlrFlag = true, true, true, true
	}

	if *banded {
		for _, app := range bench.Apps() {
			rows, err := bench.AdaptiveVsBanded(app, *n, *ts, hw.SummitNode, 9)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ablation:", err)
				os.Exit(1)
			}
			t := bench.NewTable(
				fmt.Sprintf("adaptive vs banded precision: %s @ u_req=%.0e, N=%d, V100", app.Name, app.UReq, *n),
				"variant", "Tflop/s", "time(s)", "FP64 tiles %")
			for _, r := range rows {
				t.Add(r.Variant, r.Tflops, r.Time, 100*r.FP64Share)
			}
			t.Write(os.Stdout)
		}
	}

	if *lookahead {
		rows, err := bench.LookaheadAblation(*n, *ts, hw.SummitNode, []int{1, 2, 4, 8})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ablation:", err)
			os.Exit(1)
		}
		t := bench.NewTable(
			fmt.Sprintf("stream pipeline depth (FP64/FP16, N=%d, V100)", *n),
			"variant", "Tflop/s", "time(s)")
		for _, r := range rows {
			t.Add(r.Variant, r.Tflops, r.Time)
		}
		t.Write(os.Stdout)
	}

	if *tlrFlag {
		t := bench.NewTable("MP + tile low-rank storage (N=8192, tile 512, ACA tol = each app's u_req)",
			"app", "mean rank", "max rank", "dense FP64", "MP dense", "MP+TLR", "total saving")
		for _, app := range bench.Apps() {
			rep, err := bench.TLRAnalysis(app, 8192, 512, app.UReq, 7)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ablation:", err)
				os.Exit(1)
			}
			t.Add(app.Name, rep.MeanRank, rep.MaxRank,
				bench.HumanBytes(rep.DenseFP64), bench.HumanBytes(rep.MPDense), bench.HumanBytes(rep.MPTLR),
				fmt.Sprintf("%.1fx", float64(rep.DenseFP64)/float64(rep.MPTLR)))
		}
		t.Write(os.Stdout)
	}

	if *probe {
		for _, appName := range []string{"2D-sqexp", "2D-Matern"} {
			app, _ := bench.AppByName(appName)
			ds, err := core.GenerateDataset(*probeN, app.Kernel.Dim(), app.Kernel, app.Theta, 5)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ablation:", err)
				os.Exit(1)
			}
			p := &mle.Problem{Locs: ds.Locs, Z: ds.Z, Kernel: ds.Kernel, Nugget: 1e-7, TileSize: 64}
			rows, err := mle.PrecisionImpact(p, app.Theta, []float64{0, 1e-9, 1e-6, 1e-4, 1e-2}, 8, 3)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ablation:", err)
				os.Exit(1)
			}
			t := bench.NewTable(
				fmt.Sprintf("Monte-Carlo arithmetic probe: %s, n=%d (−ℓ reference %.4f)",
					app.Name, *probeN, rows[0].Reference),
				"u_req", "mean |Δ(-loglik)|", "max", "SPD broken")
			for _, r := range rows {
				u := "exact"
				if r.UReq > 0 {
					u = fmt.Sprintf("%.0e", r.UReq)
				}
				t.Add(u, fmt.Sprintf("%.3g", r.MeanAbsDev), fmt.Sprintf("%.3g", r.MaxAbsDev),
					fmt.Sprintf("%d/%d", r.Broken, r.Replicas))
			}
			t.Write(os.Stdout)
		}
	}
}
