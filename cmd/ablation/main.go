// Command ablation quantifies the design choices DESIGN.md calls out:
//
//   - adaptive (Higham–Mary) precision selection vs the band-based
//     assignment of the prior work (refs [12], [13]), at the same
//     tile-wise accuracy guarantee;
//   - the engine's stream-pipeline depth (double buffering);
//   - the Monte-Carlo arithmetic probe (§V) that justifies each
//     application's required accuracy u_req.
//
// Usage:
//
//	ablation -banded
//	ablation -lookahead
//	ablation -probe [-probe-n 400]
//	ablation -chaos [-chaos-gpus 3]     # MP vs FP64 resilience overhead
//	ablation -sched [-sched-ranks 4]    # scheduling policies + broadcast topologies
//	ablation -plan [-plan-evals 8]      # compiled-plan cache vs fresh simulation
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"geompc/internal/bench"
	"geompc/internal/cliflags"
	"geompc/internal/core"
	"geompc/internal/hw"
	"geompc/internal/mle"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ablation:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ablation", flag.ContinueOnError)
	banded := fs.Bool("banded", false, "adaptive vs banded precision maps")
	lookahead := fs.Bool("lookahead", false, "stream pipeline depth sweep")
	probe := fs.Bool("probe", false, "Monte-Carlo arithmetic u_req probe")
	tlrFlag := fs.Bool("tlr", false, "tile low-rank + mixed precision storage study (§VIII future work)")
	chaos := fs.Bool("chaos", false, "resilience overhead of each precision configuration under an identical fault plan")
	schedFlag := fs.Bool("sched", false, "scheduling-policy and broadcast-topology sweep on the Fig 11 workload")
	planFlag := fs.Bool("plan", false, "compiled-plan cache vs fresh simulation on a repeated (MLE-shaped) loop")
	solversFlag := fs.Bool("solvers", false, "direct factorization vs iterative CG backend on the same covariance shapes")
	n := fs.Int("n", 65536, "matrix size for -banded/-lookahead/-chaos/-sched")
	probeN := fs.Int("probe-n", 400, "locations for -probe")
	ts := fs.Int("ts", 2048, "tile size")
	chaosGPUs := fs.Int("chaos-gpus", 3, "GPUs for -chaos (>=2: the plan kills one)")
	chaosFaults := fs.String("chaos-faults", "", "fault plan for -chaos (default: derived kill+flaky+slow, scaled per config)")
	schedRanks := fs.Int("sched-ranks", 4, "ranks for the -sched broadcast-topology sweep")
	planEvals := fs.Int("plan-evals", 8, "evaluations in the -plan repeated loop")
	v := cliflags.Register(fs, cliflags.Workers|cliflags.EngineWorkers|cliflags.Solver)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sw := v.SweepOpts()
	if _, err := v.Backend(); err != nil {
		return err // bad -solver name: fail before any family runs
	}

	if !*banded && !*lookahead && !*probe && !*tlrFlag && !*chaos && !*schedFlag && !*planFlag && !*solversFlag {
		*banded, *lookahead, *probe, *tlrFlag, *chaos, *schedFlag, *planFlag, *solversFlag = true, true, true, true, true, true, true, true
	}

	if *banded {
		for _, app := range bench.Apps() {
			rows, err := bench.AdaptiveVsBanded(app, *n, *ts, hw.SummitNode, 9)
			if err != nil {
				return err
			}
			t := bench.NewTable(
				fmt.Sprintf("adaptive vs banded precision: %s @ u_req=%.0e, N=%d, V100", app.Name, app.UReq, *n),
				"variant", "Tflop/s", "time(s)", "FP64 tiles %")
			for _, r := range rows {
				t.Add(r.Variant, r.Tflops, r.Time, 100*r.FP64Share)
			}
			t.Write(out)
		}
	}

	if *lookahead {
		rows, err := bench.LookaheadAblation(*n, *ts, hw.SummitNode, []int{1, 2, 4, 8})
		if err != nil {
			return err
		}
		t := bench.NewTable(
			fmt.Sprintf("stream pipeline depth (FP64/FP16, N=%d, V100)", *n),
			"variant", "Tflop/s", "time(s)")
		for _, r := range rows {
			t.Add(r.Variant, r.Tflops, r.Time)
		}
		t.Write(out)
	}

	if *tlrFlag {
		t := bench.NewTable("MP + tile low-rank storage (N=8192, tile 512, ACA tol = each app's u_req)",
			"app", "mean rank", "max rank", "dense FP64", "MP dense", "MP+TLR", "total saving")
		for _, app := range bench.Apps() {
			rep, err := bench.TLRAnalysis(app, 8192, 512, app.UReq, 7)
			if err != nil {
				return err
			}
			t.Add(app.Name, rep.MeanRank, rep.MaxRank,
				bench.HumanBytes(rep.DenseFP64), bench.HumanBytes(rep.MPDense), bench.HumanBytes(rep.MPTLR),
				fmt.Sprintf("%.1fx", float64(rep.DenseFP64)/float64(rep.MPTLR)))
		}
		t.Write(out)
	}

	if *chaos {
		rows, err := bench.ChaosAblationOpts(hw.SummitNode, *chaosGPUs, *n, *ts, *chaosFaults, sw)
		if err != nil {
			return err
		}
		t := bench.NewTable(
			fmt.Sprintf("resilience: fault plan vs precision configuration (N=%d, %d V100s, 1 kill + 1 flaky + 1 slow window)", *n, *chaosGPUs),
			"config", "scenario", "time(s)", "energy(J)", "time +%", "energy +%", "kills", "replays", "retries")
		for _, r := range rows {
			t.Add(r.Config, r.Scenario, r.Time, r.Energy,
				fmt.Sprintf("%.1f", r.TimeOverheadPct), fmt.Sprintf("%.1f", r.EnergyOverheadPct),
				r.DeviceFailures, r.ReplayedTasks, r.RetriedTasks)
		}
		t.Write(out)
	}

	if *schedFlag {
		rows, err := bench.SchedAblationOpts(hw.SummitNode, 1, 0, []int{*n}, *ts, sw)
		if err != nil {
			return err
		}
		t := bench.NewTable(
			fmt.Sprintf("scheduling policy (FP64/FP16_32 Auto, N=%d, full Summit node)", *n),
			"policy", "time(s)", "Tflop/s", "energy(J)", "H2D", "net")
		for _, r := range rows {
			t.Add(r.Policy, r.Time, r.Tflops, r.Energy,
				bench.HumanBytes(r.BytesH2D), bench.HumanBytes(r.BytesNet))
		}
		t.Write(out)

		brows, err := bench.BcastAblationOpts(hw.SummitNode, *schedRanks, []int{*n}, *ts, sw)
		if err != nil {
			return err
		}
		bt := bench.NewTable(
			fmt.Sprintf("broadcast topology (FP64/FP16_32 Auto, N=%d, %d ranks)", *n, *schedRanks),
			"topology", "time(s)", "energy(J)", "net")
		for _, r := range brows {
			bt.Add(r.Topology, r.Time, r.Energy, bench.HumanBytes(r.BytesNet))
		}
		bt.Write(out)
	}

	if *planFlag {
		rows, err := bench.PlanAblationBackend(*n, *ts, *planEvals, hw.SummitNode, v.Solver, bench.SweepOpts{})
		if err != nil {
			return err
		}
		title := fmt.Sprintf("compiled-plan cache: %d-evaluation repeated loop (FP64/FP16_32 Auto, N=%d, V100)", *planEvals, *n)
		if v.Solver != "" && v.Solver != "direct" {
			title = fmt.Sprintf("compiled-plan cache [%s backend]: %d-evaluation repeated loop (N=%d, V100)", v.Solver, *planEvals, *n)
		}
		t := bench.NewTable(
			title,
			"variant", "wall(s)", "speedup", "hits", "misses", "invalidations")
		for _, r := range rows {
			t.Add(r.Variant, fmt.Sprintf("%.4f", r.Wall), fmt.Sprintf("%.2fx", r.Speedup),
				r.Hits, r.Misses, r.Invalidations)
		}
		t.Write(out)
	}

	if *solversFlag {
		sizes := []int{16384, 32768}
		rows, err := bench.SolverAblation(hw.SummitNode, 2, 2, sizes, *ts, bench.SchedOpts{SweepOpts: sw})
		if err != nil {
			return err
		}
		t := bench.NewTable(
			"solver backends: direct factorization vs mixed-precision CG (FP64/FP16 storage, 2 ranks × 2 V100s, phantom)",
			"backend", "strategy", "N", "time(s)", "energy(J)", "Tflop/s", "net", "iters")
		for _, r := range rows {
			t.Add(r.Backend, r.Strategy, r.N, fmt.Sprintf("%.4f", r.Time), fmt.Sprintf("%.0f", r.Energy),
				fmt.Sprintf("%.2f", r.Tflops), bench.HumanBytes(r.BytesNet), r.Iterations)
		}
		t.Write(out)
	}

	if *probe {
		for _, appName := range []string{"2D-sqexp", "2D-Matern"} {
			app, _ := bench.AppByName(appName)
			ds, err := core.GenerateDataset(*probeN, app.Kernel.Dim(), app.Kernel, app.Theta, 5)
			if err != nil {
				return err
			}
			p := &mle.Problem{Locs: ds.Locs, Z: ds.Z, Kernel: ds.Kernel, Nugget: 1e-7, TileSize: 64}
			rows, err := mle.PrecisionImpact(p, app.Theta, []float64{0, 1e-9, 1e-6, 1e-4, 1e-2}, 8, 3)
			if err != nil {
				return err
			}
			t := bench.NewTable(
				fmt.Sprintf("Monte-Carlo arithmetic probe: %s, n=%d (−ℓ reference %.4f)",
					app.Name, *probeN, rows[0].Reference),
				"u_req", "mean |Δ(-loglik)|", "max", "SPD broken")
			for _, r := range rows {
				u := "exact"
				if r.UReq > 0 {
					u = fmt.Sprintf("%.0e", r.UReq)
				}
				t.Add(u, fmt.Sprintf("%.3g", r.MeanAbsDev), fmt.Sprintf("%.3g", r.MaxAbsDev),
					fmt.Sprintf("%d/%d", r.Broken, r.Replicas))
			}
			t.Write(out)
		}
	}
	return nil
}
