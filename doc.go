// Package geompc reproduces "Reducing Data Motion and Energy Consumption
// of Geospatial Modeling Applications Using Automated Precision Conversion"
// (Cao et al., IEEE CLUSTER 2023) as a pure-Go library: an adaptive
// mixed-precision tile Cholesky factorization for Gaussian maximum
// log-likelihood estimation, executed by a PaRSEC-like task runtime over
// calibrated simulations of Nvidia V100/A100/H100 GPUs, with the paper's
// automated sender/receiver precision-conversion strategy (STC/TTC).
//
// The user-facing API lives in internal/core; the runnable entry points are
// the cmd/ tools and examples/. The benchmarks in bench_test.go regenerate
// every table and figure of the paper's evaluation at laptop scale; the
// cmd/ tools regenerate them at full scale.
package geompc
