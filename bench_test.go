// Benchmarks regenerating every table and figure of the paper's evaluation,
// one testing.B function per artifact. Each prints the same rows/series the
// paper reports, at sizes that finish in seconds; the cmd/ tools run the
// same drivers at full scale (see EXPERIMENTS.md for recorded outputs).
//
//	go test -bench=. -benchmem
package geompc_test

import (
	"fmt"
	"strings"
	"testing"

	"geompc/internal/bench"
	"geompc/internal/hw"
	"geompc/internal/prec"
)

// BenchmarkTable1Peaks prints Table I: peak Tflop/s per precision per GPU.
func BenchmarkTable1Peaks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.Table1()
		if i == 0 {
			b.Log("\n" + renderTable(t))
		}
	}
}

// BenchmarkFig1GEMM runs the Fig 1 GEMM study: real emulated-precision
// accuracy plus modeled throughput per GPU generation.
func BenchmarkFig1GEMM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		acc := bench.GemmAccuracy([]int{64, 128, 256}, 42)
		perf := bench.GemmPerformance([]*hw.GPUSpec{hw.V100, hw.A100, hw.H100}, []int{2048, 8192, 32768})
		if i == 0 {
			t := bench.NewTable("Fig 1 accuracy", "N", "prec", "relerr")
			for _, r := range acc {
				t.Add(r.N, r.Prec.String(), fmt.Sprintf("%.2e", r.Err))
			}
			b.Log("\n" + renderTable(t))
			tp := bench.NewTable("Fig 1 performance", "GPU", "N", "prec", "Tflop/s")
			for _, r := range perf {
				tp.Add(r.GPU, r.N, r.Prec.String(), r.Tflops)
			}
			b.Log("\n" + renderTable(tp))
		}
	}
}

// BenchmarkTable2Motion prints Table II: tile transfer and GEMM times on a
// V100 per precision.
func BenchmarkTable2Motion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table2([]int{2048, 4096, 6144, 8192, 10240})
		if i == 0 {
			t := bench.NewTable("Table II (ms)", "row", "2048", "4096", "6144", "8192", "10240")
			for _, r := range rows {
				t.Add(r.Label, r.TimeMs[0], r.TimeMs[1], r.TimeMs[2], r.TimeMs[3], r.TimeMs[4])
			}
			b.Log("\n" + renderTable(t))
		}
	}
}

// BenchmarkFig5Accuracy2D runs a scaled-down Fig 5 panel: 2D Monte-Carlo
// parameter estimation across accuracy levels.
func BenchmarkFig5Accuracy2D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := bench.Fig5Cases()[0] // 2D-sqexp weak
		res, err := bench.AccuracyStudy(c, []float64{0, 1e-9, 1e-4}, 4, 144, 48, 7)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + renderAccuracy(res))
		}
	}
}

// BenchmarkFig6Accuracy3D runs a scaled-down Fig 6 panel: 3D sqexp.
func BenchmarkFig6Accuracy3D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := bench.Fig6Cases()[1] // 3D-sqexp strong
		res, err := bench.AccuracyStudy(c, []float64{0, 1e-8}, 4, 125, 48, 7)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + renderAccuracy(res))
		}
	}
}

// BenchmarkFig7PrecisionMap computes the per-application tile-precision
// fractions (sampled norms, no matrix materialization).
func BenchmarkFig7PrecisionMap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.NewTable("Fig 7", "app", "FP64%", "FP32%", "FP16_32%", "FP16%")
		for _, app := range bench.Apps() {
			res, err := bench.PrecisionMap(app, 65536, 2048, 128, 3)
			if err != nil {
				b.Fatal(err)
			}
			f := res.Fractions
			t.Add(app.Name, 100*f[prec.FP64], 100*f[prec.FP32], 100*f[prec.FP16x32], 100*f[prec.FP16])
		}
		if i == 0 {
			b.Log("\n" + renderTable(t))
		}
	}
}

// BenchmarkFig8STCvsTTC runs the single-GPU conversion-strategy sweep on
// the V100 model.
func BenchmarkFig8STCvsTTC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.ConvSweep(hw.SummitNode, 1, 1, []int{32768, 65536}, 2048)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + renderConv(rows))
		}
	}
}

// BenchmarkFig9Occupancy traces H100 occupancy for the four configurations.
func BenchmarkFig9Occupancy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.NewTable("Fig 9", "config", "time(s)", "mean occ %")
		for _, cfg := range bench.OccupancyConfigs() {
			run, err := bench.EnergyRunOne(hw.HaxaneNode, cfg, 32768, 2048, 20, 1)
			if err != nil {
				b.Fatal(err)
			}
			var avg float64
			for _, o := range run.Occupancy {
				avg += o.V
			}
			t.Add(cfg.Label, run.Time, 100*avg/float64(len(run.Occupancy)))
		}
		if i == 0 {
			b.Log("\n" + renderTable(t))
		}
	}
}

// BenchmarkFig10Energy compares FP64 vs adaptive MP energy on all three
// GPU generations.
func BenchmarkFig10Energy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.NewTable("Fig 10", "GPU", "config", "time(s)", "kJ", "Gflops/W")
		for _, nd := range []*hw.NodeSpec{hw.SummitNode, hw.GuyotNode, hw.HaxaneNode} {
			for _, cfg := range bench.EnergySweepConfigs() {
				run, err := bench.EnergyRunOne(nd, cfg, 32768, 2048, 10, 1)
				if err != nil {
					b.Fatal(err)
				}
				t.Add(nd.GPU.Name, run.Label, run.Time, run.EnergyJ/1e3, run.GflopsPerW)
			}
		}
		if i == 0 {
			b.Log("\n" + renderTable(t))
		}
	}
}

// BenchmarkFig11Node runs the full-node (6×V100) conversion sweep.
func BenchmarkFig11Node(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.ConvSweep(hw.SummitNode, 1, 6, []int{65536}, 2048)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + renderConv(rows))
		}
	}
}

// BenchmarkFig12Weak runs weak scaling over 1..16 Summit nodes.
func BenchmarkFig12Weak(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.WeakScaling([]int{1, 4, 16}, 49152, 2048)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + renderScale(rows))
		}
	}
}

// BenchmarkFig12Strong runs strong scaling at fixed N.
func BenchmarkFig12Strong(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.StrongScaling([]int{1, 4, 16}, 131072, 2048)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + renderScale(rows))
		}
	}
}

// BenchmarkFig12MP runs the MP-vs-FP64 comparison on a multi-node platform.
func BenchmarkFig12MP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.MPEffect(4, []int{98304}, 2048)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + renderScale(rows))
		}
	}
}

// BenchmarkEngineThroughput measures raw phantom-mode task throughput —
// the figure that bounds full-scale Fig 12 reproduction time.
func BenchmarkEngineThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.StrongScaling([]int{4}, 131072, 2048); err != nil {
			b.Fatal(err)
		}
	}
	nt := 131072 / 2048
	tasks := nt * (nt + 1) * (nt + 2) / 6
	b.ReportMetric(float64(tasks*b.N)/b.Elapsed().Seconds(), "tasks/s")
}

// --- rendering helpers ---

func renderTable(t *bench.Table) string {
	var sb strings.Builder
	t.Write(&sb)
	return sb.String()
}

func renderAccuracy(res []bench.AccuracyResult) string {
	t := bench.NewTable("estimates", "u_req", "param", "truth", "median", "q1", "q3")
	for _, r := range res {
		u := "exact"
		if r.UReq > 0 {
			u = fmt.Sprintf("%.0e", r.UReq)
		}
		t.Add(u, r.Param, r.Truth, r.Summary.Median, r.Summary.Q1, r.Summary.Q3)
	}
	return renderTable(t)
}

func renderConv(rows []bench.ConvRow) string {
	t := bench.NewTable("conversion sweep", "config", "strategy", "N", "Tflop/s", "%peak")
	for _, r := range rows {
		t.Add(r.Config, r.Strategy, r.N, r.Tflops, r.PctPeak)
	}
	return renderTable(t)
}

func renderScale(rows []bench.ScaleRow) string {
	t := bench.NewTable("scaling", "config", "nodes", "GPUs", "N", "Tflop/s", "speedup")
	for _, r := range rows {
		t.Add(r.Config, r.Nodes, r.GPUs, r.N, r.Tflops, r.Speedup)
	}
	return renderTable(t)
}
