# geompc — reproduction of Cao et al., IEEE CLUSTER 2023.

GO ?= go

.PHONY: all build test vet lint lint-suppressions bench race fuzz experiments clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific analyzers on top of gofmt and go vet: the intraprocedural
# checkers (detercheck, preccast, lockcheck) plus the interprocedural suite
# (precflow, deterflow, contractcheck, transitive hotalloc) built on the
# whole-program call graph. See DESIGN.md §6e/§6j and the "Static analysis"
# section of the README for the //geompc:hot and //geompc:nolint grammar.
#
# LINT_BUDGET guards wall-clock: the summary-based engine keeps the whole
# run a small multiple of type-checking (~2.5s over 50 packages as of the
# interprocedural landing; the pre-landing baseline was ~9.5s). The budget
# is deliberately loose — it exists to catch quadratic blowups in the
# dataflow engine, not scheduler jitter. `go run` compile time counts.
LINT_BUDGET ?= 30

lint: vet
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then echo "gofmt needed:"; echo "$$fmtout"; exit 1; fi
	@start=$$(date +%s); \
	$(GO) run ./cmd/geompclint ./...; rc=$$?; \
	elapsed=$$(( $$(date +%s) - start )); \
	echo "geompclint wall-clock: $${elapsed}s (budget $(LINT_BUDGET)s)"; \
	if [ $$rc -ne 0 ]; then exit $$rc; fi; \
	if [ $$elapsed -gt $(LINT_BUDGET) ]; then echo "lint exceeded LINT_BUDGET"; exit 1; fi

# Suppression inventory: every //geompc:nolint in the tree with its state
# (active / unused / expired) and reason, for audit during review.
lint-suppressions:
	$(GO) run ./cmd/geompclint -suppressions ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./internal/runtime/ ./internal/cholesky/ ./internal/plan/ ./internal/sweep/ ./internal/cg/ ./internal/solver/

# Focused benchmark trajectory (see BENCH_kernels.json): per-precision
# 256x256 GEMM + SYRK/TRSM kernels, the phantom NT=64 Cholesky, the
# Fig 12 weak-scaling step, the plan-cache ablation pair (fresh
# simulation vs compiled-plan replay on the MLE-shaped loop), and the
# parallel-sweep pair (serial reference vs 4-worker pool) and the
# parallel-DES pair (serial event loop vs 4 rank loops on a multi-rank
# phantom run); both pairs run at -cpu 4 — benchjson records GOMAXPROCS
# per line, so they stay honest even on smaller hosts. The
# solver-ablation pair (SolverAblationDirect / SolverAblationCG) times
# the direct-vs-iterative backend grid from internal/bench/solver.go.
# BENCHTIME=1x gives a CI smoke run; the committed
# artifact uses 5x against the seed baseline in results/bench_seed.txt.
BENCHTIME ?= 5x

bench:
	$(GO) test -run '^$$' -bench 'GemmNT256|SyrkTrsm256' -benchmem -benchtime $(BENCHTIME) -cpu 1 ./internal/linalg/ > results/bench_after.txt
	$(GO) test -run '^$$' -bench 'PhantomNT64$$' -benchmem -benchtime $(BENCHTIME) -cpu 1 ./internal/cholesky/ >> results/bench_after.txt
	$(GO) test -run '^$$' -bench 'Fig12WeakStep|PlanAblationMLE' -benchmem -benchtime $(BENCHTIME) -cpu 1 ./internal/bench/ >> results/bench_after.txt
	$(GO) test -run '^$$' -bench 'SweepParallel|DESParallel' -benchmem -benchtime $(BENCHTIME) -cpu 4 ./internal/bench/ >> results/bench_after.txt
	$(GO) test -run '^$$' -bench 'SolverAblation' -benchmem -benchtime $(BENCHTIME) -cpu 1 ./internal/bench/ >> results/bench_after.txt
	$(GO) run ./cmd/benchjson -seed results/bench_seed.txt < results/bench_after.txt > BENCH_kernels.json

bench-all:
	$(GO) test -bench=. -benchmem .

fuzz:
	$(GO) test ./internal/fp16/ -fuzz FuzzFromFloat32 -fuzztime 30s

# Regenerate every paper artifact into results/ (the Fig 12 Summit-scale
# sweeps simulate ~10^7-task DAGs and take tens of minutes on one core;
# the Monte-Carlo studies take ~45 minutes).
experiments:
	mkdir -p results
	$(GO) run ./cmd/gemmbench > results/fig1_tables.txt
	$(GO) run ./cmd/precmap -fig7 -n 409600 -ts 2048 > results/fig7.txt
	$(GO) run ./cmd/precmap -demo -comm -demo-n 16384 -demo-ts 2048 -app 2D-sqexp > results/fig2_4_maps.txt
	$(GO) run ./cmd/convbench -machine Summit -gpus 1 > results/fig8a_v100.txt
	$(GO) run ./cmd/convbench -machine Guyot -gpus 1 > results/fig8b_a100.txt
	$(GO) run ./cmd/convbench -machine Haxane -gpus 1 -sizes 16384,32768,49152,65536,81920 > results/fig8c_h100.txt
	$(GO) run ./cmd/convbench -node -machine Summit > results/fig11a_summitnode.txt
	$(GO) run ./cmd/convbench -node -machine Guyot > results/fig11b_guyotnode.txt
	$(GO) run ./cmd/power -occupancy -n 81920 > results/fig9_occupancy.txt
	$(GO) run ./cmd/power -fig10 > results/fig10_energy.txt
	$(GO) run ./cmd/ablation > results/ablation.txt
	$(GO) run ./cmd/accuracy -dim 2 -replicas 12 -n 324 -ts 54 -maxevals 400 > results/fig5_accuracy2d.txt
	$(GO) run ./cmd/accuracy -dim 3 -replicas 12 -n 343 -ts 49 -maxevals 400 -levels 0,1e-8,1e-4,1e-2 > results/fig6_accuracy3d.txt
	$(GO) run ./cmd/scale -weak -nodes 1,4,16,64 -base-n 98304 > results/fig12a_weak.txt
	$(GO) run ./cmd/scale -strong -nodes 16,32,48,64 -strong-n 798720 > results/fig12b_strong.txt
	$(GO) run ./cmd/scale -mp -mp-nodes 64 -sizes 196608,399360,598016,798720 > results/fig12c_mp.txt

clean:
	$(GO) clean ./...
