module geompc

go 1.22
