// Quickstart: the sixty-second tour of the library.
//
// It generates a synthetic 2D Matérn field, fits its parameters by maximum
// likelihood with the adaptive mixed-precision Cholesky at the paper's
// validated accuracy (u_req = 1e-9), and prints the estimates together with
// the simulated cost of the computation on a V100 — comparing against an
// exact FP64 fit to show what mixed precision buys.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"geompc/internal/core"
)

func main() {
	truth := []float64{1.0, 0.03, 0.5} // σ², β (range), ν (smoothness)

	// 1. Synthetic data: 400 locations on a jittered grid in the unit
	//    square, values drawn from the Matérn model at `truth`.
	ds, err := core.GenerateDataset(400, 2, core.Matern2D(), truth, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d observations of a 2D Matérn field, θ = %v\n\n", len(ds.Z), truth)

	// 2. Fit with the adaptive mixed-precision Cholesky (automated STC/TTC
	//    conversion) at the paper's Matérn accuracy, 1e-9.
	mp, err := core.Fit(ds, core.Options{UReq: 1e-9, Machine: core.OneV100()})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Reference: exact FP64.
	exact, err := core.Fit(ds, core.Options{Machine: core.OneV100()})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("            mixed-precision   exact FP64   truth")
	for i, name := range mp.ParamNames {
		fmt.Printf("  %-8s  %15.4f  %11.4f  %6.2f\n", name, mp.Theta[i], exact.Theta[i], truth[i])
	}
	fmt.Printf("\nboth fits used %d likelihood evaluations; the estimates agree —\n", mp.Evaluations)
	fmt.Println("the paper's claim that u_req=1e-9 matches exact computation.")

	// 4. What mixed precision buys at production scale: project one
	//    covariance factorization of the fitted model at N=65536 with the
	//    paper's 2048 tiles on a V100 (phantom simulation, no data).
	const bigN = 65536
	pMP, err := core.ProjectFactorization(bigN, ds.Kernel, mp.Theta,
		core.Options{UReq: 1e-9, TileSize: 2048, Machine: core.OneV100()}, 1)
	if err != nil {
		log.Fatal(err)
	}
	pEx, err := core.ProjectFactorization(bigN, ds.Kernel, mp.Theta,
		core.Options{TileSize: 2048, Machine: core.OneV100()}, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprojected %dx%d factorization on one V100 (tile 2048):\n", bigN, bigN)
	fmt.Printf("  mixed precision: %6.2f s, %6.1f kJ, %6.2f Gflops/W\n",
		pMP.Time, pMP.Energy/1e3, pMP.GflopsPerW)
	fmt.Printf("  tile kernel census: %v\n", pMP.TilesByPrec)
	fmt.Printf("  exact FP64:      %6.2f s, %6.1f kJ, %6.2f Gflops/W\n",
		pEx.Time, pEx.Energy/1e3, pEx.GflopsPerW)
	fmt.Printf("  speedup %.2fx, energy saving %.1f%%\n",
		pEx.Time/pMP.Time, 100*(1-pMP.Energy/pEx.Energy))
}
