// soil3d exercises the paper's hardest case: a 3D squared-exponential field
// (soil or atmospheric-column measurements), where spatial locality in the
// matrix ordering is weakest and the adaptive precision map keeps most
// tiles in high precision (Fig 7c: >60% FP64/FP32).
//
// The example fits the field at the paper's 3D accuracy (u_req = 1e-8),
// prints the tile-precision census of the covariance it factorizes, and
// contrasts the modest savings here with the 2D case — reproducing the
// paper's observation that the approach adapts its aggressiveness to the
// application.
//
//	go run ./examples/soil3d
package main

import (
	"fmt"
	"log"

	"geompc/internal/bench"
	"geompc/internal/core"
	"geompc/internal/prec"
)

func main() {
	truth := []float64{1.0, 0.1}
	ds, err := core.GenerateDataset(512, 3, core.SqExp3D(), truth, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("soil3d: %d observations of a 3D squared-exponential field\n\n", len(ds.Z))

	mp, err := core.Fit(ds, core.Options{UReq: 1e-8, Machine: core.OneV100()})
	if err != nil {
		log.Fatal(err)
	}
	exact, err := core.Fit(ds, core.Options{Machine: core.OneV100()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("            MP @ 1e-8   exact FP64   truth")
	for i, name := range mp.ParamNames {
		fmt.Printf("  %-8s  %9.4f  %11.4f  %6.2f\n", name, mp.Theta[i], exact.Theta[i], truth[i])
	}
	fmt.Printf("\nestimates agree to %.1e; mixed precision preserved the fit.\n\n",
		maxDiff(mp.Theta, exact.Theta))

	// Tile-precision census at production scale for both a 3D and a 2D
	// field — why the 3D case saves less (Fig 7's contrast).
	for _, app := range []string{"3D-sqexp", "2D-sqexp"} {
		a, _ := bench.AppByName(app)
		res, err := bench.PrecisionMap(a, 131072, 2048, 128, 3)
		if err != nil {
			log.Fatal(err)
		}
		f := res.Fractions
		fmt.Printf("%-9s @ u_req=%.0e: FP64 %5.1f%%  FP32 %5.1f%%  FP16_32 %5.1f%%  FP16 %5.1f%%\n",
			a.Name, a.UReq,
			100*f[prec.FP64], 100*f[prec.FP32], 100*f[prec.FP16x32], 100*f[prec.FP16])
	}
	// Projected production-scale cost for both dimensionalities.
	fmt.Println()
	for _, name := range []string{"3D-sqexp", "2D-sqexp"} {
		a, _ := bench.AppByName(name)
		mpP, err := core.ProjectFactorization(131072, a.Kernel, a.Theta,
			core.Options{UReq: a.UReq, TileSize: 2048, Machine: core.OneA100()}, 3)
		if err != nil {
			log.Fatal(err)
		}
		exP, err := core.ProjectFactorization(131072, a.Kernel, a.Theta,
			core.Options{TileSize: 2048, Machine: core.OneA100()}, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s on one A100, N=131072: MP %.2fs vs FP64 %.2fs (%.2fx), energy saving %.1f%%\n",
			name, mpP.Time, exP.Time, exP.Time/mpP.Time, 100*(1-mpP.Energy/exP.Energy))
	}

	fmt.Println("\nthe 3D field's weaker index locality keeps tiles in high precision,")
	fmt.Println("so the adaptive framework automatically spends precision where needed")
}

func maxDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}
