// energysweep projects one geospatial model's factorization across the
// three GPU generations the paper evaluates — V100, A100, H100 — comparing
// exact FP64 against the adaptive mixed-precision approach with automated
// conversion on each (the Fig 10 story as a library call).
//
// It shows the paper's key energy finding: MP savings are largest on the
// V100 (whose FP64 pipeline is slow) and smaller on A100/H100 (whose FP64
// runs on tensor cores at the FP32 rate), while Gflops/W improves on every
// generation.
//
//	go run ./examples/energysweep
package main

import (
	"fmt"
	"log"

	"geompc/internal/core"
)

func main() {
	const n = 65536
	kernel := core.SqExp2D()
	theta := []float64{1.0, 0.1}

	machines := []struct {
		name string
		m    core.Machine
	}{
		{"V100 (Summit)", core.OneV100()},
		{"A100 (Guyot)", core.OneA100()},
		{"H100 (Haxane)", core.OneH100()},
	}

	fmt.Printf("projected %d×%d covariance factorization (2D-sqexp, u_req=1e-4)\n\n", n, n)
	fmt.Println("GPU             config   time(s)   Tflop/s   energy(kJ)  Gflops/W  STC tasks")
	for _, mc := range machines {
		var fp64 *core.Projection
		for _, cfg := range []struct {
			label string
			ureq  float64
		}{
			{"FP64", 0},
			{"MP", 1e-4},
		} {
			proj, err := core.ProjectFactorization(n, kernel, theta,
				core.Options{UReq: cfg.ureq, Machine: mc.m, TileSize: 2048}, 1)
			if err != nil {
				log.Fatal(err)
			}
			if cfg.label == "FP64" {
				fp64 = proj
			}
			fmt.Printf("%-15s %-8s %8.3f  %8.1f  %10.2f  %8.2f  %6d/%d\n",
				mc.name, cfg.label, proj.Time, proj.Gflops/1e3, proj.Energy/1e3,
				proj.GflopsPerW, proj.STCTasks, proj.CommTasks)
			if cfg.label == "MP" {
				fmt.Printf("%-15s %-8s speedup %.2fx, energy saving %.1f%%\n",
					"", "", fp64.Time/proj.Time, 100*(1-proj.Energy/fp64.Energy))
			}
		}
		fmt.Println()
	}
	fmt.Println("note the V100's larger MP saving: its FP64 pipeline is 16x slower than")
	fmt.Println("its half-precision tensor cores, while A100/H100 FP64 already runs on")
	fmt.Println("tensor cores at the FP32 rate (§VII-E)")
}
