// climate2d models a temperature-like 2D field — the climate/weather
// workload that motivates the paper's introduction.
//
// It simulates a smooth, strongly correlated Matérn field over a region,
// keeps 20% of the stations as a held-out validation set, fits the model on
// the rest with the adaptive mixed-precision Cholesky, and then kriges
// (predicts) the held-out stations. The punchline is the paper's central
// claim: mixed-precision estimation at the validated accuracy gives
// predictions statistically indistinguishable from exact FP64, at a
// fraction of the simulated machine time and energy.
//
//	go run ./examples/climate2d
package main

import (
	"fmt"
	"log"
	"math"

	"geompc/internal/core"
	"geompc/internal/geo"
)

func main() {
	// A smooth (ν = 1), strongly correlated (β = 0.3) field: typical of
	// temperature anomalies over a continental region.
	truth := []float64{1.0, 0.3, 1.0}
	full, err := core.GenerateDataset(600, 2, core.Matern2D(), truth, 7)
	if err != nil {
		log.Fatal(err)
	}

	// Hold out every fifth station for validation.
	var trainLocs, testLocs []geo.Point
	var trainZ, testZ []float64
	for i := range full.Locs {
		if i%5 == 0 {
			testLocs = append(testLocs, full.Locs[i])
			testZ = append(testZ, full.Z[i])
		} else {
			trainLocs = append(trainLocs, full.Locs[i])
			trainZ = append(trainZ, full.Z[i])
		}
	}
	train := &core.Dataset{Locs: trainLocs, Z: trainZ, Kernel: full.Kernel}
	fmt.Printf("climate2d: %d training stations, %d held out\n\n", len(trainZ), len(testZ))

	type outcome struct {
		name   string
		rep    *core.FitReport
		rmse   float64
		fitErr float64
	}
	var outcomes []outcome
	for _, cfg := range []struct {
		name string
		ureq float64
	}{
		{"exact FP64", 0},
		{"MP u_req=1e-9", 1e-9},
		{"MP u_req=1e-4", 1e-4},
	} {
		rep, err := core.Fit(train, core.Options{UReq: cfg.ureq, Machine: core.OneV100()})
		if err != nil {
			log.Fatal(err)
		}
		pred, err := core.Predict(train, rep.Theta, testLocs, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		var ss, fe float64
		for i := range pred {
			d := pred[i] - testZ[i]
			ss += d * d
		}
		for i := range rep.Theta {
			d := (rep.Theta[i] - truth[i]) / truth[i]
			fe += d * d
		}
		outcomes = append(outcomes, outcome{
			name: cfg.name, rep: rep,
			rmse:   math.Sqrt(ss / float64(len(pred))),
			fitErr: math.Sqrt(fe / float64(len(rep.Theta))),
		})
	}

	fmt.Println("configuration   σ²      β       ν       rel.θ err  pred RMSE")
	for _, o := range outcomes {
		fmt.Printf("%-14s  %.4f  %.4f  %.4f  %9.2e  %9.4f\n",
			o.name, o.rep.Theta[0], o.rep.Theta[1], o.rep.Theta[2],
			o.fitErr, o.rmse)
	}
	base := outcomes[0]
	fmt.Printf("\nvs exact FP64: u_req=1e-9 changes prediction RMSE by %+.2e\n",
		outcomes[1].rmse-base.rmse)

	// Cost at production scale: one factorization of this model's
	// covariance for a 98k-station network on a Summit node (6 V100s).
	// The smooth, strongly-correlated field keeps every tile FP64 at
	// u_req=1e-9; the accuracy table above shows 1e-4 leaves prediction
	// RMSE untouched, and that is where the savings appear — the
	// adaptive framework spends exactly the precision the application
	// needs.
	const bigN = 98304
	exProj, err := core.ProjectFactorization(bigN, train.Kernel, outcomes[0].rep.Theta,
		core.Options{TileSize: 2048, Machine: core.Summit(1)}, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprojected %d-station covariance factorization on one Summit node:\n", bigN)
	fmt.Printf("  FP64:      %6.2f s, %7.1f kJ\n", exProj.Time, exProj.Energy/1e3)
	for _, u := range []float64{1e-9, 1e-4} {
		proj, err := core.ProjectFactorization(bigN, train.Kernel, outcomes[1].rep.Theta,
			core.Options{UReq: u, TileSize: 2048, Machine: core.Summit(1)}, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  MP @ %.0e: %5.2f s, %7.1f kJ (speedup %.2fx, energy saving %.1f%%)\n",
			u, proj.Time, proj.Energy/1e3,
			exProj.Time/proj.Time, 100*(1-proj.Energy/exProj.Energy))
	}
}
